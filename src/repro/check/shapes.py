"""Shapes pass: symbolic shape & dtype abstract interpretation over the IR.

Every op *stores* its output shape, MACs and params as concrete values
computed at construction time; the per-layer characterization (Figures 6-9,
Table V) and everything downstream — rooflines, sweeps, fleet, placement —
trusts them blindly.  This pass removes the blind trust: it re-derives every
tensor shape, MAC count, parameter count and byte total from first principles
via the per-op transfer functions in :mod:`repro.check.shape_rules` and an
abstract interpreter that propagates the derivations topologically, then
compares derived against stored at zero tolerance.

Each graph is interpreted three ways:

* **concrete** — the stored input shapes; derived-vs-stored mismatches report
  SHAPE001 (shape), SHAPE002 (dtype propagation), SHAPE003 (rank/broadcast),
  SHAPE004 (reshape conservation), SHAPE005 (accounting), SHAPE006
  (conv/pool feasibility).
* **symbolic batch** — a free batch dim ``N`` is prefixed to every input and
  flowed through the graph; derived shapes must carry ``N`` in the leading
  position only and per-op MACs must scale exactly linearly in ``N`` (the
  batch cost model the execution engine assumes).  Violations are SHAPE007.
* **symbolic sequence** — for sequence models, the stored sequence length is
  replaced by a free ``SEQ`` dim; derived values must reproduce the stored
  ones when evaluated at the stored binding and stay well-formed for every
  ``SEQ >= 1``, so a graph that is only valid at its baked-in length is
  SHAPE007.

Transform outputs (fuse/prune/quantize/freeze, plus the freeze-after-fuse
composition) are re-interpreted and compared against the base derivation:
any inconsistency a transform introduces is SHAPE008, extending the IR101-104
conservation laws to the shape domain.

Locations read ``graph:<model>[@<transform>]/<op>`` as in the IR pass.
"""

from __future__ import annotations

import math

from repro.check.findings import Finding, Severity
from repro.check.shape_rules import Derived, TransferError, apply_transfer
from repro.graphs import ops as O
from repro.graphs.graph import Graph
from repro.graphs.symbolic import Dim, dim, evaluate_dim, free_symbols
from repro.graphs.tensor import DType, TensorShape
from repro.graphs.transforms import freeze_graph, fuse_graph, prune_graph, quantize_graph

RULES: dict[str, tuple[Severity, str]] = {
    "SHAPE001": (Severity.ERROR,
                 "stored output shapes must match the derived transfer-function shapes"),
    "SHAPE002": (Severity.ERROR,
                 "dtypes must propagate producer -> consumer without implicit casts"),
    "SHAPE003": (Severity.ERROR,
                 "op inputs must satisfy rank/shape compatibility (Add/Concat and friends)"),
    "SHAPE004": (Severity.ERROR,
                 "reshape/flatten must conserve the element count"),
    "SHAPE005": (Severity.ERROR,
                 "stored MACs/params/bytes must match derived accounting at zero tolerance"),
    "SHAPE006": (Severity.ERROR,
                 "conv/pool arithmetic must stay feasible under the declared padding"),
    "SHAPE007": (Severity.ERROR,
                 "graphs must stay valid for every symbolic batch/sequence binding >= 1"),
    "SHAPE008": (Severity.ERROR,
                 "transforms must preserve derived shape/accounting consistency"),
}

#: compatible weight/activation dtype pairings beyond "same dtype"; binary
#: weights need quantized activations (the FINN deployment style).
_BINARY_ACTS = (DType.INT8, DType.BINARY)


def _finding(rule: str, location: str, message: str) -> Finding:
    return Finding(rule, RULES[rule][0], location, message)


# --------------------------------------------------------------------------
# propagation
# --------------------------------------------------------------------------


def _propagate(graph: Graph, seeds: dict[int, TensorShape],
               batch: Dim | None):
    """Topologically derive every op, yielding ``(op, derived, error)``.

    ``seeds`` overrides Input shapes (symbolic modes); a failed transfer
    yields its :class:`TransferError` and falls back to the stored shape so
    one defect does not cascade down the graph.
    """
    env: dict[int, Derived] = {}
    for op in graph.ops:
        if isinstance(op, O.Input):
            derived = Derived(shape=seeds.get(id(op), op.output_shape))
            env[id(op)] = derived
            yield op, derived, None
            continue
        inputs = tuple(env[id(parent)].shape for parent in op.inputs)
        error: TransferError | None = None
        try:
            derived = apply_transfer(op, inputs, batch=batch)
        except TransferError as exc:
            error = exc
            fallback = (TensorShape(batch, *op.output_shape.dims)
                        if batch is not None else op.output_shape)
            derived = Derived(shape=fallback, macs=op.macs, params=op.params)
        env[id(op)] = derived
        yield op, derived, error


# --------------------------------------------------------------------------
# concrete interpretation: SHAPE001-SHAPE006
# --------------------------------------------------------------------------


def _check_dtypes(op: O.Op, loc: str) -> list[Finding]:
    findings = []
    produced = {parent.act_dtype for parent in op.inputs}
    if len(produced) > 1:
        names = sorted(d.value for d in produced)
        findings.append(_finding(
            "SHAPE002", loc,
            f"mixed activation dtypes {names} meet without a cast boundary"))
    elif produced and op.act_dtype not in produced:
        findings.append(_finding(
            "SHAPE002", loc,
            f"consumes {next(iter(produced)).value} activations but stores "
            f"{op.act_dtype.value} without a cast/quantize boundary"))
    if op.weight_dtype is DType.BINARY and op.act_dtype not in _BINARY_ACTS:
        findings.append(_finding(
            "SHAPE002", loc,
            f"binary weights require quantized activations, got "
            f"{op.act_dtype.value}"))
    return findings


def _check_accounting(op: O.Op, derived: Derived, loc: str) -> list[Finding]:
    findings = []
    if derived.macs != op.macs:
        findings.append(_finding(
            "SHAPE005", loc, f"stored MACs {op.macs} != derived {derived.macs}"))
    if derived.params != op.params:
        findings.append(_finding(
            "SHAPE005", loc,
            f"stored params {op.params} != derived {derived.params}"))
    derived_weight = math.ceil(derived.params * op.weight_dtype.bytes)
    if derived_weight != op.weight_bytes():
        findings.append(_finding(
            "SHAPE005", loc,
            f"stored weight bytes {op.weight_bytes()} != derived {derived_weight}"))
    derived_act = math.ceil(derived.shape.numel * op.act_dtype.bytes)
    if derived_act != op.output_bytes():
        findings.append(_finding(
            "SHAPE005", loc,
            f"stored activation bytes {op.output_bytes()} != derived {derived_act}"))
    if isinstance(op, O.Embedding):
        touched = math.ceil(
            derived.shape.dims[0] * op.dim * op.weight_dtype.bytes)
        stored = op.traffic_weight_bytes(exploit_sparsity=False)
        if touched != stored:
            findings.append(_finding(
                "SHAPE005", loc,
                f"stored embedding traffic {stored} B != derived {touched} B"))
    return findings


def _interpret_concrete(graph: Graph, where: str
                        ) -> tuple[list[Finding], dict[str, Derived], set[str]]:
    """Concrete run: returns (findings, derivation by op name, flagged names)."""
    findings: list[Finding] = []
    env: dict[str, Derived] = {}
    flagged: set[str] = set()
    for op, derived, error in _propagate(graph, seeds={}, batch=None):
        loc = f"{where}/{op.name}"
        env[op.name] = derived
        before = len(findings)
        if error is not None:
            findings.append(_finding(error.rule, loc, error.message))
        elif not isinstance(op, O.Input):
            if derived.shape.dims != op.output_shape.dims:
                findings.append(_finding(
                    "SHAPE001", loc,
                    f"stored shape {op.output_shape.dims} != derived "
                    f"{derived.shape.dims}"))
            findings += _check_accounting(op, derived, loc)
        findings += _check_dtypes(op, loc)
        if len(findings) > before:
            flagged.add(op.name)
    return findings, env, flagged


# --------------------------------------------------------------------------
# symbolic batch interpretation: SHAPE007
# --------------------------------------------------------------------------


def _interpret_batch(graph: Graph, where: str, concrete: dict[str, Derived],
                     flagged: set[str]) -> list[Finding]:
    batch = dim("N")
    seeds = {id(op): TensorShape(batch, *op.output_shape.dims)
             for op in graph.ops if isinstance(op, O.Input)}
    findings: list[Finding] = []
    for op, derived, error in _propagate(graph, seeds, batch):
        if isinstance(op, O.Input) or op.name in flagged:
            continue  # concretely-broken ops already reported their own rule
        loc = f"{where}/{op.name}"
        if error is not None:
            findings.append(_finding(
                "SHAPE007", loc, f"not batch-safe: {error.message}"))
            continue
        dims = derived.shape.dims
        if dims[0] != batch:
            findings.append(_finding(
                "SHAPE007", loc, f"derived shape {dims} lost the leading batch dim"))
            continue
        base = concrete[op.name]
        if any(free_symbols(d) for d in dims[1:]):
            findings.append(_finding(
                "SHAPE007", loc,
                f"per-sample dims depend on the batch size: {dims[1:]}"))
        elif dims[1:] != base.shape.dims:
            findings.append(_finding(
                "SHAPE007", loc,
                f"per-sample dims {dims[1:]} != concrete {base.shape.dims}"))
        if evaluate_dim(derived.macs, {"N": 3}) != 3 * base.macs:
            findings.append(_finding(
                "SHAPE007", loc,
                f"MACs are not linear in the batch size: {derived.macs}"))
        if derived.params != base.params:
            findings.append(_finding(
                "SHAPE007", loc,
                f"params depend on the batch size: {derived.params}"))
    return findings


# --------------------------------------------------------------------------
# symbolic sequence interpretation: SHAPE007
# --------------------------------------------------------------------------


def _seq_seeds(graph: Graph) -> tuple[dict[int, TensorShape], int] | None:
    """Symbolic-SEQ seeding for sequence models, or None when inapplicable.

    The sequence axis is the leading dim of any Input consumed by an
    Embedding (token ids, rank 1) or recurrent layer (features, rank 2).
    """
    seq = dim("SEQ")
    seeds: dict[int, TensorShape] = {}
    lengths: set[int] = set()
    for op in graph.ops:
        rank = 1 if isinstance(op, O.Embedding) else \
            2 if isinstance(op, O._RecurrentLayer) else None
        if rank is None:
            continue
        source = op.inputs[0]
        if isinstance(source, O.Input) and source.output_shape.rank == rank:
            seeds[id(source)] = TensorShape(seq, *source.output_shape.dims[1:])
            lengths.add(source.output_shape.dims[0])
    if not seeds or len(lengths) != 1:
        return None  # not a sequence model, or no single SEQ binding exists
    return seeds, lengths.pop()


def _interpret_seq(graph: Graph, where: str, concrete: dict[str, Derived],
                   flagged: set[str]) -> list[Finding]:
    seeded = _seq_seeds(graph)
    if seeded is None:
        return []
    seeds, stored_len = seeded
    at_stored = {"SEQ": stored_len}
    at_one = {"SEQ": 1}
    findings: list[Finding] = []
    for op, derived, error in _propagate(graph, seeds, batch=None):
        if isinstance(op, O.Input) or op.name in flagged:
            continue
        loc = f"{where}/{op.name}"
        if error is not None:
            findings.append(_finding(
                "SHAPE007", loc,
                f"only valid at the stored sequence length: {error.message}"))
            continue
        base = concrete[op.name]
        dims = derived.shape.dims
        evaluated = tuple(evaluate_dim(d, at_stored) for d in dims)
        if evaluated != base.shape.dims:
            findings.append(_finding(
                "SHAPE007", loc,
                f"symbolic shape {dims} evaluates to {evaluated} at "
                f"SEQ={stored_len}, stored {base.shape.dims}"))
        if any(evaluate_dim(d, at_one) < 1 for d in dims):
            findings.append(_finding(
                "SHAPE007", loc, f"shape {dims} collapses at SEQ=1"))
        if evaluate_dim(derived.macs, at_stored) != base.macs:
            findings.append(_finding(
                "SHAPE007", loc,
                f"symbolic MACs {derived.macs} disagree with stored "
                f"{base.macs} at SEQ={stored_len}"))
        if free_symbols(derived.params):
            findings.append(_finding(
                "SHAPE007", loc,
                f"params depend on the sequence length: {derived.params}"))
    return findings


# --------------------------------------------------------------------------
# transform preservation: SHAPE008
# --------------------------------------------------------------------------


def verify_transform_shapes(kind: str, base_env: dict[str, Derived],
                            transformed: Graph, label: str) -> list[Finding]:
    """SHAPE008: a transform output must re-derive cleanly and agree with
    the base graph's derivation for every surviving op."""
    where = f"graph:{label}"
    findings: list[Finding] = []
    inner, env, _ = _interpret_concrete(transformed, where)
    for found in inner:
        findings.append(_finding(
            "SHAPE008", found.location,
            f"{kind} broke derived consistency: [{found.rule}] {found.message}"))
    for op in transformed.ops:
        base = base_env.get(op.name)
        if base is None:
            findings.append(_finding(
                "SHAPE008", f"{where}/{op.name}",
                f"{kind} introduced op {op.name!r} absent from the base graph"))
        elif env[op.name].shape.dims != base.shape.dims:
            findings.append(_finding(
                "SHAPE008", f"{where}/{op.name}",
                f"{kind} changed the derived shape: {base.shape.dims} -> "
                f"{env[op.name].shape.dims}"))
    return findings


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------


def verify_graph_shapes(graph: Graph, label: str | None = None) -> list[Finding]:
    """Interpret one graph concretely and under symbolic batch/sequence dims."""
    where = f"graph:{label or graph.name}"
    findings, concrete, flagged = _interpret_concrete(graph, where)
    findings += _interpret_batch(graph, where, concrete, flagged)
    findings += _interpret_seq(graph, where, concrete, flagged)
    return findings


def verify_transform(kind: str, base: Graph, transformed: Graph,
                     label: str | None = None) -> list[Finding]:
    """SHAPE008 for one transform output against its base graph."""
    _, base_env, _ = _interpret_concrete(base, f"graph:{base.name}")
    return verify_transform_shapes(kind, base_env, transformed,
                                   label or f"{base.name}@{kind}")


def verify_transforms(graph: Graph, label: str | None = None) -> list[Finding]:
    """Apply every transform and verify shape preservation (SHAPE008)."""
    label = label or graph.name
    _, base_env, _ = _interpret_concrete(graph, f"graph:{label}")
    fused = fuse_graph(graph)
    outputs = [
        ("fuse", graph, fused),
        ("prune", graph, prune_graph(graph, sparsity=0.5)),
        ("quantize", graph, quantize_graph(graph, DType.INT8)),
        ("freeze", graph, freeze_graph(graph)),
        # Composition: the same fusion-chain case the IR pass exercises.
        ("freeze", fused, freeze_graph(fused)),
    ]
    findings: list[Finding] = []
    for kind, base, transformed in outputs:
        step = f"{label}@{kind}" if base is graph else f"{label}@fuse+{kind}"
        findings += verify_transform_shapes(kind, base_env, transformed, step)
    return findings


def verify_model(model_name: str) -> list[Finding]:
    """Verify one zoo model and all of its transform outputs."""
    from repro.models import load_model

    graph = load_model(model_name)
    findings = verify_graph_shapes(graph)
    if not findings:  # transforms of a broken graph would double-report
        findings += verify_transforms(graph)
    return findings


def run(models: list[str] | None = None) -> list[Finding]:
    """Shapes pass entry point: every zoo model (or ``models``) + transforms."""
    from repro.models import list_models

    findings: list[Finding] = []
    for name in models if models is not None else list_models():
        findings += verify_model(name)
    return findings


# --------------------------------------------------------------------------
# symbolic summaries (golden-snapshot surface)
# --------------------------------------------------------------------------


def render_symbolic_summary(graph: Graph) -> str:
    """A per-op table of fully symbolic derivations (batch ``N`` prefixed,
    sequence axis ``SEQ`` where applicable) — the golden-snapshot surface
    proving the symbolic algebra stays stable."""
    batch = dim("N")
    seeded = _seq_seeds(graph)
    seq_seeds = seeded[0] if seeded else {}
    seeds = {}
    for op in graph.ops:
        if isinstance(op, O.Input):
            per_sample = seq_seeds.get(id(op), op.output_shape)
            seeds[id(op)] = TensorShape(batch, *per_sample.dims)
    lines = [f"model: {graph.name}"]
    for op, derived, error in _propagate(graph, seeds, batch):
        if error is not None:
            rendered = f"<{error.rule}: {error.message}>"
        else:
            dims = ", ".join(str(d) for d in derived.shape.dims)
            rendered = (f"({dims})  params={derived.params}  "
                        f"macs={derived.macs}")
        lines.append(f"{op.name:<24} {type(op).__name__:<18} {rendered}")
    return "\n".join(lines) + "\n"
