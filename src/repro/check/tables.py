"""Data-consistency checker for device, framework and calibration tables.

The paper's reproduction rests on a web of hand-maintained tables: Table
III's device specs, Table II's framework capabilities and efficiency
fractions, the calibration anchors, and Table V's per-device framework
chains.  Each entry is declared in one module but *consumed* by several
others, so a half-registered device or a framework chain naming an
unsupported backend produces wrong numbers silently.  This pass
cross-validates every table against the registries and against each other.

Every checker takes its inputs as arguments (defaulting to the real
registries/tables) so tests can inject corrupted entries and assert rule
ids without monkeypatching global state.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.check.findings import Finding, Severity
from repro.engine.calibration import _SCALE_DELEGATES, ANCHORS
from repro.frameworks import FRAMEWORK_REGISTRY, list_frameworks, load_framework
from repro.frameworks.compat import CompatStatus, TABLE_V_FRAMEWORKS, TABLE_V_MODELS
from repro.harness.paper_data import TABLE5_EXPECTED
from repro.hardware import DEVICE_REGISTRY, list_devices, load_device
from repro.models import MODEL_REGISTRY
from repro.runtime.runner import BEST_FRAMEWORK_CANDIDATES

RULES: dict[str, tuple[Severity, str]] = {
    "TAB001": (Severity.ERROR, "device memory spec must be positive with a usable "
                               "fraction in (0, 1]"),
    "TAB002": (Severity.ERROR, "device compute units must declare positive finite peaks"),
    "TAB003": (Severity.ERROR, "device power/utilization/thermal constants out of range"),
    "TAB004": (Severity.ERROR, "device supported_frameworks must resolve in the "
                               "framework registry"),
    "TAB005": (Severity.ERROR, "framework capability star ratings must be integers 1-3"),
    "TAB006": (Severity.ERROR, "framework efficiency fractions must lie in (0, 1]"),
    "TAB007": (Severity.ERROR, "framework overhead costs must be non-negative"),
    "TAB008": (Severity.ERROR, "calibration anchors must reference registered entries "
                               "with a positive target"),
    "TAB009": (Severity.ERROR, "calibration delegates must resolve to an anchored "
                               "framework"),
    "TAB010": (Severity.ERROR, "Table V framework chains must be supported by their "
                               "device"),
    "TAB011": (Severity.ERROR, "Table V expected matrix must cover exactly the declared "
                               "models/devices with known symbols"),
    "TAB012": (Severity.ERROR, "best-framework candidates must be registered, supported "
                               "and cover the Table V chain"),
    "TAB013": (Severity.ERROR, "network link presets must be sane and cover the "
                               "required preset names"),
    "TAB014": (Severity.ERROR, "placement device prices must cover exactly the "
                               "registered devices with positive finite values"),
}


def _finding(rule: str, location: str, message: str) -> Finding:
    return Finding(rule, RULES[rule][0], location, message)


def _positive_finite(value) -> bool:
    return isinstance(value, (int, float)) and value > 0 and math.isfinite(float(value))


def _fraction(value) -> bool:
    return isinstance(value, (int, float)) and 0.0 < value <= 1.0


# -- devices ---------------------------------------------------------------
def check_devices(devices: Iterable | None = None) -> list[Finding]:
    """Validate device specs (TAB001-TAB004) for every catalog entry."""
    if devices is None:
        devices = [load_device(name) for name in list_devices()]
    findings: list[Finding] = []
    for device in devices:
        where = f"device:{device.name}"
        memory = device.memory
        if not _positive_finite(memory.capacity_bytes):
            findings.append(_finding("TAB001", where, "memory capacity must be positive"))
        if not _positive_finite(memory.bandwidth_bytes_per_s):
            findings.append(_finding("TAB001", where, "memory bandwidth must be positive"))
        if not _positive_finite(memory.storage_bandwidth_bytes_per_s):
            findings.append(_finding("TAB001", where, "storage bandwidth must be positive"))
        if not _fraction(memory.usable_fraction):
            findings.append(_finding(
                "TAB001", where,
                f"usable_fraction must be in (0, 1], got {memory.usable_fraction!r}"))

        if not device.compute_units:
            findings.append(_finding("TAB002", where, "device has no compute units"))
        for unit in device.compute_units:
            unit_where = f"{where}/{unit.kind.value}"
            if not unit.peak_macs_per_s:
                findings.append(_finding("TAB002", unit_where, "unit declares no peaks"))
            for dtype, peak in unit.peak_macs_per_s.items():
                if not _positive_finite(peak):
                    findings.append(_finding(
                        "TAB002", unit_where,
                        f"peak for {dtype.value} must be positive finite, got {peak!r}"))
            if unit.dispatch_overhead_s < 0:
                findings.append(_finding("TAB002", unit_where,
                                         "dispatch overhead must be >= 0"))
            if unit.cores < 1:
                findings.append(_finding("TAB002", unit_where, "cores must be >= 1"))

        if device.power.idle_w < 0 or device.power.active_w < device.power.idle_w:
            findings.append(_finding(
                "TAB003", where, "power model needs 0 <= idle_w <= active_w"))
        if not _fraction(device.inference_utilization):
            findings.append(_finding(
                "TAB003", where,
                f"inference_utilization must be in (0, 1], "
                f"got {device.inference_utilization!r}"))
        thermal = device.thermal
        if thermal is not None:
            if not _positive_finite(thermal.r_passive_c_per_w) or \
                    not _positive_finite(thermal.r_active_c_per_w):
                findings.append(_finding("TAB003", where,
                                         "thermal resistances must be positive"))
            if not _positive_finite(thermal.c_j_per_c):
                findings.append(_finding("TAB003", where,
                                         "thermal capacitance must be positive"))
            if thermal.surface_offset_c < 0:
                findings.append(_finding("TAB003", where,
                                         "surface offset must be >= 0"))

        for name in device.supported_frameworks:
            if name not in FRAMEWORK_REGISTRY:
                findings.append(_finding(
                    "TAB004", where, f"supported framework {name!r} is not registered"))
    return findings


# -- frameworks ------------------------------------------------------------
_STAR_FIELDS = ("usability", "adding_new_models", "predefined_models",
                "documentation", "low_level_modifications",
                "compatibility_with_others")
_EFFICIENCY_FIELDS = ("depthwise_efficiency", "conv3d_efficiency",
                      "norm_efficiency", "recurrent_efficiency")
_OVERHEAD_COST_FIELDS = ("library_load_s", "graph_setup_base_s",
                         "graph_setup_per_op_s", "session_base_s",
                         "python_per_op_s", "runtime_memory_bytes",
                         "gpu_staging_base_s")


def check_frameworks(frameworks: Iterable | None = None) -> list[Finding]:
    """Validate framework capability/efficiency tables (TAB005-TAB007)."""
    if frameworks is None:
        frameworks = [load_framework(name) for name in list_frameworks()]
    findings: list[Finding] = []
    for framework in frameworks:
        where = f"framework:{framework.name}"
        for field in _STAR_FIELDS:
            stars = getattr(framework.capabilities, field)
            if not isinstance(stars, int) or isinstance(stars, bool) or \
                    not 1 <= stars <= 3:
                findings.append(_finding(
                    "TAB005", where, f"{field} must be 1-3 stars, got {stars!r}"))

        for kind, quality in framework.kernel_quality.items():
            if not _fraction(quality):
                findings.append(_finding(
                    "TAB006", where,
                    f"kernel_quality[{kind.value}] must be in (0, 1], got {quality!r}"))
        for field in _EFFICIENCY_FIELDS:
            value = getattr(framework, field)
            if not _fraction(value):
                findings.append(_finding(
                    "TAB006", where, f"{field} must be in (0, 1], got {value!r}"))
        for kind, (half, exponent) in framework.size_saturation.items():
            if not _positive_finite(half) or not _fraction(exponent):
                findings.append(_finding(
                    "TAB006", where,
                    f"size_saturation[{kind.value}] needs half > 0 and exponent "
                    f"in (0, 1], got {(half, exponent)!r}"))

        for field in _OVERHEAD_COST_FIELDS:
            value = getattr(framework.overheads, field)
            if value < 0:
                findings.append(_finding(
                    "TAB007", where, f"{field} must be >= 0, got {value!r}"))
        if framework.overheads.weight_memory_factor < 1.0:
            findings.append(_finding(
                "TAB007", where,
                "weight_memory_factor below 1.0 would under-count live weights"))
    return findings


# -- calibration -----------------------------------------------------------
def check_calibration(
    anchors: Mapping[tuple[str, str], tuple[str, float, str]] | None = None,
    delegates: Mapping[str, str] | None = None,
) -> list[Finding]:
    """Validate calibration anchors and delegates (TAB008-TAB009)."""
    if anchors is None:
        anchors = ANCHORS
    if delegates is None:
        delegates = _SCALE_DELEGATES
    findings: list[Finding] = []
    anchored_frameworks = set()
    for (framework, device), (model, target_s, source) in anchors.items():
        where = f"calibration:{framework}@{device}"
        anchored_frameworks.add(framework)
        if framework not in FRAMEWORK_REGISTRY:
            findings.append(_finding("TAB008", where,
                                     f"unknown framework {framework!r}"))
        if device not in DEVICE_REGISTRY:
            findings.append(_finding("TAB008", where, f"unknown device {device!r}"))
        if model not in MODEL_REGISTRY:
            findings.append(_finding("TAB008", where, f"unknown anchor model {model!r}"))
        if not _positive_finite(target_s):
            findings.append(_finding(
                "TAB008", where, f"anchor target must be positive finite seconds, "
                                 f"got {target_s!r}"))
        if not source:
            findings.append(_finding("TAB008", where, "anchor has no figure source"))

    for framework, delegate in delegates.items():
        where = f"calibration:{framework}"
        if framework not in FRAMEWORK_REGISTRY or delegate not in FRAMEWORK_REGISTRY:
            findings.append(_finding(
                "TAB009", where, f"delegate pair {framework!r} -> {delegate!r} "
                                 "names an unregistered framework"))
            continue
        if framework == delegate:
            findings.append(_finding("TAB009", where, "framework delegates to itself"))
        if delegate not in anchored_frameworks:
            findings.append(_finding(
                "TAB009", where,
                f"delegate {delegate!r} has no calibration anchors to inherit"))
    return findings


# -- Table V ---------------------------------------------------------------
def check_table_v(
    table_v: Mapping[str, tuple[str, ...]] | None = None,
    models: Sequence[str] | None = None,
    expected: Mapping[str, Mapping[str, str]] | None = None,
    candidates: Mapping[str, tuple[str, ...]] | None = None,
) -> list[Finding]:
    """Cross-validate the Table V declarations (TAB010-TAB012)."""
    if table_v is None:
        table_v = TABLE_V_FRAMEWORKS
    if models is None:
        models = TABLE_V_MODELS
    if expected is None:
        expected = TABLE5_EXPECTED
    if candidates is None:
        candidates = BEST_FRAMEWORK_CANDIDATES
    findings: list[Finding] = []

    resolved_devices = {}
    for device_name, chain in table_v.items():
        where = f"tableV:{device_name}"
        if device_name not in DEVICE_REGISTRY:
            findings.append(_finding("TAB010", where, "device is not registered"))
            continue
        device = load_device(device_name)
        resolved_devices[device_name] = device
        if not chain:
            findings.append(_finding("TAB010", where, "empty framework chain"))
        for framework_name in chain:
            if framework_name not in FRAMEWORK_REGISTRY:
                findings.append(_finding(
                    "TAB010", where, f"chain framework {framework_name!r} is not "
                                     "registered"))
            elif not device.supports_framework(framework_name):
                findings.append(_finding(
                    "TAB010", where, f"device does not support chain framework "
                                     f"{framework_name!r}"))

    known_symbols = {status.symbol for status in CompatStatus}
    for model_name in models:
        if model_name not in MODEL_REGISTRY:
            findings.append(_finding(
                "TAB011", f"tableV:{model_name}", "Table V model is not in the zoo"))
    if set(expected) != set(models):
        missing = set(models) - set(expected)
        extra = set(expected) - set(models)
        findings.append(_finding(
            "TAB011", "tableV:expected",
            f"expected-matrix rows disagree with TABLE_V_MODELS "
            f"(missing {sorted(missing)}, extra {sorted(extra)})"))
    for model_name, row in expected.items():
        where = f"tableV:{model_name}"
        if set(row) != set(table_v):
            findings.append(_finding(
                "TAB011", where, "expected-matrix columns disagree with the Table V "
                                 "device list"))
        for device_name, symbol in row.items():
            if symbol not in known_symbols:
                findings.append(_finding(
                    "TAB011", f"{where}/{device_name}",
                    f"unknown status symbol {symbol!r}"))

    for device_name, frameworks in candidates.items():
        where = f"tableV:{device_name}"
        if device_name not in DEVICE_REGISTRY:
            findings.append(_finding(
                "TAB012", where, "candidate device is not registered"))
            continue
        device = resolved_devices.get(device_name) or load_device(device_name)
        for framework_name in frameworks:
            if framework_name not in FRAMEWORK_REGISTRY:
                findings.append(_finding(
                    "TAB012", where, f"candidate framework {framework_name!r} is not "
                                     "registered"))
            elif not device.supports_framework(framework_name):
                findings.append(_finding(
                    "TAB012", where, f"device does not support candidate "
                                     f"{framework_name!r}"))
        chain = table_v.get(device_name, ())
        missing = [fw for fw in chain if fw not in frameworks]
        if missing:
            findings.append(_finding(
                "TAB012", where,
                f"Table V chain frameworks {missing} missing from the best-framework "
                "candidates"))
    return findings


def check_links(links: Mapping[str, object] | None = None,
                required: Sequence[str] | None = None) -> list[Finding]:
    """Validate the network link preset table (TAB013).

    Every preset must be keyed by its own name with positive finite
    bandwidth, non-negative finite latency and reliability in (0, 1],
    and the required preset names the distributed-inference surface
    depends on must all exist.
    """
    from repro.distribution.network import LINK_PRESETS, REQUIRED_LINK_PRESETS

    if links is None:
        links = LINK_PRESETS
    if required is None:
        required = REQUIRED_LINK_PRESETS
    findings: list[Finding] = []
    for name, link in links.items():
        where = f"link:{name}"
        if getattr(link, "name", None) != name:
            findings.append(_finding(
                "TAB013", where,
                f"preset is keyed {name!r} but names itself "
                f"{getattr(link, 'name', None)!r}"))
        if not _positive_finite(getattr(link, "bandwidth_bytes_per_s", None)):
            findings.append(_finding(
                "TAB013", where, "bandwidth must be positive and finite"))
        latency = getattr(link, "latency_s", None)
        if not (isinstance(latency, (int, float)) and latency >= 0
                and math.isfinite(float(latency))):
            findings.append(_finding(
                "TAB013", where, "latency must be non-negative and finite"))
        reliability = getattr(link, "reliability", None)
        if not (isinstance(reliability, (int, float))
                and 0 < reliability <= 1):
            findings.append(_finding(
                "TAB013", where, "reliability must lie in (0, 1]"))
    for name in required:
        if name not in links:
            findings.append(_finding(
                "TAB013", f"link:{name}",
                "required preset is missing from LINK_PRESETS"))
    return findings


def check_placement_prices(prices: Mapping[str, float] | None = None,
                           devices: Iterable | None = None) -> list[Finding]:
    """Validate the placement cost table against the registry (TAB014).

    The optimizer prices every candidate deployment by its boards, so an
    unpriced device would crash the search and an orphan price entry is a
    stale row.  Both directions are checked through canonical names.
    """
    from repro.core.registry import canonical_name
    from repro.placement.cost import DEVICE_PRICE_USD

    if prices is None:
        prices = DEVICE_PRICE_USD
    if devices is None:
        devices = list_devices()
    device_names = {canonical_name(name): name for name in devices}
    findings: list[Finding] = []
    priced: set[str] = set()
    for name, price in prices.items():
        where = f"price:{name}"
        canon = canonical_name(name)
        if canon in priced:
            findings.append(_finding(
                "TAB014", where, "duplicate price entry for this device"))
        priced.add(canon)
        if canon not in device_names:
            findings.append(_finding(
                "TAB014", where, "priced device is not registered"))
        if not _positive_finite(price):
            findings.append(_finding(
                "TAB014", where, "price must be positive and finite"))
    for canon, name in device_names.items():
        if canon not in priced:
            findings.append(_finding(
                "TAB014", f"price:{name}",
                "registered device has no placement price"))
    return findings


def run() -> list[Finding]:
    """Tables pass entry point: every checker over the real declarations."""
    return (check_devices() + check_frameworks() + check_calibration()
            + check_table_v() + check_links() + check_placement_prices())
