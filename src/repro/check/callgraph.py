"""Package-wide call graph for the interprocedural check passes.

The graph is built purely from source — no imports are executed — so
resolution is necessarily conservative.  A call site resolves through a
ladder of precision tiers, stopping at the first that matches:

1. a nested ``def`` visible in an enclosing scope of the caller,
2. a function or method defined in the caller's own module
   (``self.m()`` resolves against the caller's own class first),
3. a name imported with ``from mod import name``,
4. an attribute call through a module alias (``import a.b as c; c.f()``),
5. a method call on a *module-level instance* whose class is known
   (``CACHE = MemoCache(); CACHE.get_or_build(...)`` resolves to
   ``MemoCache.get_or_build``),
6. a unique match anywhere in the package for the bare name,
7. otherwise the full candidate set of same-named functions (or nothing,
   for names the package never defines — builtins, stdlib).

Besides direct calls, the graph records **function-reference edges**:
passing ``_run_cell`` to ``pool.map`` or a ``build`` closure to
``get_or_build`` creates an edge, because on a parallel path the callee
runs even though no call expression names it.

Known blind spot: first-class *data-driven* dispatch.
``Registry.create`` calls ``self._factories[key]()`` — a subscript, not a
name — so experiment generators registered in
:mod:`repro.harness.registry` are not reachable through the graph.  The
effects pass documents this rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.check import astutil
from repro.check.astutil import SourceModule


@dataclass
class FunctionNode:
    """One function, method, or nested def in the package.

    ``fid`` is the stable identity used everywhere else:
    ``"engine/cache.py:MemoCache.get_or_build"`` — display path, colon,
    dotted qualname within the module.
    """

    fid: str
    name: str
    qualname: str
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None
    calls: list["CallSite"] = field(default_factory=list)
    refs: list["CallSite"] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass(frozen=True)
class CallSite:
    """One resolved edge: the call (or reference) expression and targets."""

    node: ast.AST
    lineno: int
    targets: tuple[str, ...]
    via_reference: bool = False


@dataclass
class ModuleNode:
    """Per-module namespace facts the resolver consults."""

    module: SourceModule
    functions: dict[str, FunctionNode] = field(default_factory=dict)
    import_aliases: dict[str, str] = field(default_factory=dict)
    imported_names: dict[str, tuple[str, str]] = field(default_factory=dict)
    instance_classes: dict[str, str] = field(default_factory=dict)
    global_containers: dict[str, int] = field(default_factory=dict)


_CONTAINER_NODES = (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                    ast.SetComp)


def _walk_skip_defs(node: ast.AST):
    """``ast.walk`` that stays inside one function: nested ``def``s are
    their own :class:`FunctionNode`s, so their bodies are not this
    function's call sites (a direct call or reference to the nested def
    still creates the edge)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield child
        yield from _walk_skip_defs(child)


def _module_name(module: SourceModule) -> str:
    """Dotted package-relative module name: engine/cache.py -> engine.cache."""
    parts = list(module.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class CallGraph:
    """The package call graph: nodes per function, resolved edges per site."""

    def __init__(self, modules: list[SourceModule]) -> None:
        self.modules = modules
        self.by_module: dict[str, ModuleNode] = {}
        self.by_name: dict[str, list[FunctionNode]] = {}
        self.functions: dict[str, FunctionNode] = {}
        self._module_by_dotted: dict[str, ModuleNode] = {}
        for mod in modules:
            self._index_module(mod)
        for mnode in self.by_module.values():
            self._resolve_module(mnode)

    # -- indexing ----------------------------------------------------------
    def _index_module(self, mod: SourceModule) -> None:
        mnode = ModuleNode(module=mod)
        self.by_module[mod.display] = mnode
        self._module_by_dotted[_module_name(mod)] = mnode
        for stmt in mod.tree.body:
            self._index_stmt(mnode, stmt, prefix="", cls=None)
        for stmt in mod.tree.body:
            self._index_module_assign(mnode, stmt)

    def _index_stmt(self, mnode: ModuleNode, stmt: ast.stmt, prefix: str,
                    cls: str | None) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}{stmt.name}"
            fnode = FunctionNode(
                fid=f"{mnode.module.display}:{qual}",
                name=stmt.name, qualname=qual, module=mnode.module,
                node=stmt, cls=cls)
            mnode.functions[qual] = fnode
            self.functions[fnode.fid] = fnode
            self.by_name.setdefault(stmt.name, []).append(fnode)
            for inner in stmt.body:
                self._index_stmt(mnode, inner, prefix=f"{qual}.", cls=cls)
        elif isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                self._index_stmt(mnode, inner, prefix=f"{stmt.name}.",
                                 cls=stmt.name)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            self._index_import(mnode, stmt)

    def _index_import(self, mnode: ModuleNode,
                      stmt: ast.Import | ast.ImportFrom) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                if target.startswith("repro.") or target == "repro":
                    mnode.import_aliases[bound] = target.removeprefix(
                        "repro.").removeprefix("repro")
        else:
            if not stmt.module or not stmt.module.startswith("repro"):
                return
            source = stmt.module.removeprefix("repro").lstrip(".")
            for alias in stmt.names:
                bound = alias.asname or alias.name
                mnode.imported_names[bound] = (source, alias.name)

    def _index_module_assign(self, mnode: ModuleNode, stmt: ast.stmt) -> None:
        """Record ``NAME = ClassName(...)`` instances and mutable containers."""
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        if value is None:
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Call):
                cname = astutil.call_name(value)
                if cname and (cname in mnode.functions
                              or self._class_known(mnode, cname)):
                    mnode.instance_classes[target.id] = cname
                if cname in ("dict", "list", "set", "defaultdict",
                             "OrderedDict", "Counter", "deque"):
                    mnode.global_containers[target.id] = stmt.lineno
            elif isinstance(value, _CONTAINER_NODES):
                mnode.global_containers[target.id] = stmt.lineno

    def _class_known(self, mnode: ModuleNode, cname: str) -> bool:
        if any(f.cls == cname for f in mnode.functions.values()):
            return True
        if cname in mnode.imported_names:
            src, orig = mnode.imported_names[cname]
            target = self._module_by_dotted.get(src)
            if target is not None:
                return any(f.cls == orig for f in target.functions.values())
        return any(f.cls == cname for f in self.functions.values())

    # -- resolution --------------------------------------------------------
    def _resolve_module(self, mnode: ModuleNode) -> None:
        for fnode in mnode.functions.values():
            self._resolve_function(mnode, fnode)

    def _resolve_function(self, mnode: ModuleNode,
                          fnode: FunctionNode) -> None:
        nested = self.nested_defs(mnode, fnode)
        for node in _walk_skip_defs(fnode.node):
            if isinstance(node, ast.Call):
                targets = self._resolve_call(mnode, fnode, nested, node)
                if targets:
                    fnode.calls.append(CallSite(
                        node=node, lineno=node.lineno, targets=targets))
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    ref = self._resolve_reference(mnode, fnode, nested, arg)
                    if ref:
                        fnode.refs.append(CallSite(
                            node=arg, lineno=arg.lineno, targets=ref,
                            via_reference=True))

    def _resolve_call(self, mnode: ModuleNode, fnode: FunctionNode,
                      nested: dict[str, FunctionNode],
                      node: ast.Call) -> tuple[str, ...]:
        func = node.func
        if isinstance(func, ast.Name):
            return self._resolve_bare(mnode, fnode, nested, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(mnode, fnode, func)
        return ()

    def _resolve_bare(self, mnode: ModuleNode, fnode: FunctionNode,
                      nested: dict[str, FunctionNode],
                      name: str) -> tuple[str, ...]:
        if name in nested:                                    # tier 1
            return (nested[name].fid,)
        own = mnode.functions.get(name)                       # tier 2
        if own is not None:
            return (own.fid,)
        if name in mnode.imported_names:                      # tier 3
            src, orig = mnode.imported_names[name]
            target = self._module_by_dotted.get(src)
            if target is not None and orig in target.functions:
                return (target.functions[orig].fid,)
            return ()
        candidates = self.by_name.get(name, ())               # tiers 6/7
        if len(candidates) == 1:
            return (candidates[0].fid,)
        return tuple(c.fid for c in candidates)

    def _resolve_attribute(self, mnode: ModuleNode, fnode: FunctionNode,
                           func: ast.Attribute) -> tuple[str, ...]:
        method = func.attr
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "self" and fnode.cls:                # self.m()
                own = mnode.functions.get(f"{fnode.cls}.{method}")
                if own is not None:
                    return (own.fid,)
            if base.id in mnode.import_aliases:                # alias.f()
                target = self._module_by_dotted.get(
                    mnode.import_aliases[base.id])
                if target is not None and method in target.functions:
                    return (target.functions[method].fid,)
            cls = self._instance_class(mnode, base.id)         # INSTANCE.m()
            if cls is not None:
                resolved = self._resolve_method(mnode, cls, method)
                if resolved:
                    return resolved
            if base.id in mnode.imported_names:                # imported inst
                src, orig = mnode.imported_names[base.id]
                target = self._module_by_dotted.get(src)
                if target is not None:
                    cls = target.instance_classes.get(orig)
                    if cls is not None:
                        resolved = self._resolve_method(target, cls, method)
                        if resolved:
                            return resolved
        # tier 6/7 over methods by bare name
        candidates = [c for c in self.by_name.get(method, ())
                      if c.cls is not None]
        if len(candidates) == 1:
            return (candidates[0].fid,)
        return tuple(c.fid for c in candidates)

    def _instance_class(self, mnode: ModuleNode, name: str) -> str | None:
        return mnode.instance_classes.get(name)

    def _resolve_method(self, mnode: ModuleNode, cls: str,
                        method: str) -> tuple[str, ...]:
        own = mnode.functions.get(f"{cls}.{method}")
        if own is not None:
            return (own.fid,)
        if cls in mnode.imported_names:
            src, orig = mnode.imported_names[cls]
            target = self._module_by_dotted.get(src)
            if target is not None:
                theirs = target.functions.get(f"{orig}.{method}")
                if theirs is not None:
                    return (theirs.fid,)
        candidates = [f for f in self.functions.values()
                      if f.cls == cls and f.name == method]
        if len(candidates) == 1:
            return (candidates[0].fid,)
        return ()

    def _resolve_reference(self, mnode: ModuleNode, fnode: FunctionNode,
                           nested: dict[str, FunctionNode],
                           arg: ast.expr) -> tuple[str, ...]:
        """Function values passed as arguments (pool.map targets, builders)."""
        if isinstance(arg, ast.Name):
            if arg.id in nested:
                return (nested[arg.id].fid,)
            own = mnode.functions.get(arg.id)
            if own is not None:
                return (own.fid,)
            if arg.id in mnode.imported_names:
                src, orig = mnode.imported_names[arg.id]
                target = self._module_by_dotted.get(src)
                if target is not None and orig in target.functions:
                    return (target.functions[orig].fid,)
        elif isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
            if arg.value.id == "self" and fnode.cls:
                own = mnode.functions.get(f"{fnode.cls}.{arg.attr}")
                if own is not None:
                    return (own.fid,)
        return ()

    # -- public resolution API (used by the effects pass) ------------------
    def nested_defs(self, mnode: ModuleNode,
                    fnode: FunctionNode) -> dict[str, FunctionNode]:
        """Direct nested ``def``s of ``fnode``, by bare name."""
        prefix = fnode.qualname + "."
        return {f.name: f for q, f in mnode.functions.items()
                if q.startswith(prefix) and "." not in q[len(prefix):]}

    def resolve_module(self, dotted: str) -> ModuleNode | None:
        """ModuleNode for a package-relative dotted name (``engine.cache``)."""
        return self._module_by_dotted.get(dotted)

    def resolve_call(self, mnode: ModuleNode, fnode: FunctionNode,
                     nested: dict[str, FunctionNode],
                     node: ast.Call) -> tuple[str, ...]:
        """Resolve one call expression in ``fnode``'s scope to target fids."""
        return self._resolve_call(mnode, fnode, nested, node)

    def resolve_reference(self, mnode: ModuleNode, fnode: FunctionNode,
                          nested: dict[str, FunctionNode],
                          arg: ast.expr) -> tuple[str, ...]:
        """Resolve a function-valued expression (builder, pool target)."""
        return self._resolve_reference(mnode, fnode, nested, arg)

    # -- queries -----------------------------------------------------------
    def successors(self, fid: str) -> set[str]:
        fnode = self.functions.get(fid)
        if fnode is None:
            return set()
        out: set[str] = set()
        for site in fnode.calls + fnode.refs:
            out.update(site.targets)
        return out

    def reachable(self, roots: list[str]) -> set[str]:
        """All fids reachable from the given root fids (roots included)."""
        seen: set[str] = set()
        frontier = [fid for fid in roots if fid in self.functions]
        while frontier:
            fid = frontier.pop()
            if fid in seen:
                continue
            seen.add(fid)
            frontier.extend(self.successors(fid) - seen)
        return seen

    def find(self, suffix: str) -> list[str]:
        """fids whose ``module:qualname`` ends with ``suffix`` (root lookup)."""
        return [fid for fid in self.functions
                if fid == suffix or fid.endswith(suffix)]


def build(modules: list[SourceModule]) -> CallGraph:
    return CallGraph(modules)
