"""Package-wide call graph for the interprocedural check passes.

The graph is built purely from source — no imports are executed — so
resolution is necessarily conservative.  A call site resolves through a
ladder of precision tiers, stopping at the first that matches:

1. a nested ``def`` visible in an enclosing scope of the caller,
2. a function or method defined in the caller's own module
   (``self.m()`` resolves against the caller's own class first),
3. a name imported with ``from mod import name``,
4. an attribute call through a module alias (``import a.b as c; c.f()``),
5. a method call on a *module-level instance* whose class is known
   (``CACHE = MemoCache(); CACHE.get_or_build(...)`` resolves to
   ``MemoCache.get_or_build``),
6. a unique match anywhere in the package for the bare name,
7. otherwise the full candidate set of same-named functions (or nothing,
   for names the package never defines — builtins, stdlib).

Besides direct calls, the graph records **function-reference edges**:
passing ``_run_cell`` to ``pool.map`` or a ``build`` closure to
``get_or_build`` creates an edge, because on a parallel path the callee
runs even though no call expression names it.

Data-driven *subscript dispatch* resolves into candidate-set edges:

* ``PASSES[name]()`` where ``PASSES`` is a module-level dict literal of
  resolvable function references — the call targets every value.
* ``self._factories[key]()`` in a registry: a method that stores one of
  its own parameters into ``self.<attr>[...]`` marks ``<attr>`` as a
  dispatch container, every call site of that method contributes the
  function value it registers (including values built by a helper that
  returns a nested ``def``, and loop variables bound to literal tuples of
  function names), and the subscript call targets the whole candidate
  set.  Resolution is context-insensitive — all factories registered on a
  class are candidates at every dispatch site of that class — which is
  conservative in the right direction for reachability analysis.

Remaining blind spot: values registered as ``lambda``\\ s (the experiment
generators in :mod:`repro.harness.registry`) have no :class:`FunctionNode`
and stay invisible; they are covered by the single-file ARCH rules and
the runtime stress tests instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.check import astutil
from repro.check.astutil import SourceModule


@dataclass
class FunctionNode:
    """One function, method, or nested def in the package.

    ``fid`` is the stable identity used everywhere else:
    ``"engine/cache.py:MemoCache.get_or_build"`` — display path, colon,
    dotted qualname within the module.
    """

    fid: str
    name: str
    qualname: str
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None
    calls: list["CallSite"] = field(default_factory=list)
    refs: list["CallSite"] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass(frozen=True)
class CallSite:
    """One resolved edge: the call (or reference) expression and targets."""

    node: ast.AST
    lineno: int
    targets: tuple[str, ...]
    via_reference: bool = False


@dataclass
class ModuleNode:
    """Per-module namespace facts the resolver consults."""

    module: SourceModule
    functions: dict[str, FunctionNode] = field(default_factory=dict)
    import_aliases: dict[str, str] = field(default_factory=dict)
    imported_names: dict[str, tuple[str, str]] = field(default_factory=dict)
    instance_classes: dict[str, str] = field(default_factory=dict)
    global_containers: dict[str, int] = field(default_factory=dict)
    #: module-level dict literals of function refs: NAME -> candidate fids.
    dispatch_tables: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: module-level loop vars bound to literal tuples of function names.
    loop_functions: dict[str, tuple[str, ...]] = field(default_factory=dict)


_CONTAINER_NODES = (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                    ast.SetComp)


def _walk_skip_defs(node: ast.AST):
    """``ast.walk`` that stays inside one function: nested ``def``s are
    their own :class:`FunctionNode`s, so their bodies are not this
    function's call sites (a direct call or reference to the nested def
    still creates the edge)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield child
        yield from _walk_skip_defs(child)


def _module_name(module: SourceModule) -> str:
    """Dotted package-relative module name: engine/cache.py -> engine.cache."""
    parts = list(module.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class CallGraph:
    """The package call graph: nodes per function, resolved edges per site."""

    def __init__(self, modules: list[SourceModule]) -> None:
        self.modules = modules
        self.by_module: dict[str, ModuleNode] = {}
        self.by_name: dict[str, list[FunctionNode]] = {}
        self.functions: dict[str, FunctionNode] = {}
        self._module_by_dotted: dict[str, ModuleNode] = {}
        #: (class name, attr) -> candidate fids for `self.<attr>[key]()`.
        self.dispatch_targets: dict[tuple[str, str], set[str]] = {}
        for mod in modules:
            self._index_module(mod)
        self._collect_dispatch()
        for mnode in self.by_module.values():
            self._resolve_module(mnode)

    # -- indexing ----------------------------------------------------------
    def _index_module(self, mod: SourceModule) -> None:
        mnode = ModuleNode(module=mod)
        self.by_module[mod.display] = mnode
        self._module_by_dotted[_module_name(mod)] = mnode
        for stmt in mod.tree.body:
            self._index_stmt(mnode, stmt, prefix="", cls=None)
        for stmt in mod.tree.body:
            self._index_module_assign(mnode, stmt)

    def _index_stmt(self, mnode: ModuleNode, stmt: ast.stmt, prefix: str,
                    cls: str | None) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}{stmt.name}"
            fnode = FunctionNode(
                fid=f"{mnode.module.display}:{qual}",
                name=stmt.name, qualname=qual, module=mnode.module,
                node=stmt, cls=cls)
            mnode.functions[qual] = fnode
            self.functions[fnode.fid] = fnode
            self.by_name.setdefault(stmt.name, []).append(fnode)
            for inner in stmt.body:
                self._index_stmt(mnode, inner, prefix=f"{qual}.", cls=cls)
        elif isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                self._index_stmt(mnode, inner, prefix=f"{stmt.name}.",
                                 cls=stmt.name)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            self._index_import(mnode, stmt)

    def _index_import(self, mnode: ModuleNode,
                      stmt: ast.Import | ast.ImportFrom) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                if target.startswith("repro.") or target == "repro":
                    mnode.import_aliases[bound] = target.removeprefix(
                        "repro.").removeprefix("repro")
        else:
            if not stmt.module or not stmt.module.startswith("repro"):
                return
            source = stmt.module.removeprefix("repro").lstrip(".")
            for alias in stmt.names:
                bound = alias.asname or alias.name
                mnode.imported_names[bound] = (source, alias.name)

    def _index_module_assign(self, mnode: ModuleNode, stmt: ast.stmt) -> None:
        """Record ``NAME = ClassName(...)`` instances and mutable containers."""
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        if value is None:
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Call):
                cname = astutil.call_name(value)
                if cname and (cname in mnode.functions
                              or self._class_known(mnode, cname)):
                    mnode.instance_classes[target.id] = cname
                if cname in ("dict", "list", "set", "defaultdict",
                             "OrderedDict", "Counter", "deque"):
                    mnode.global_containers[target.id] = stmt.lineno
            elif isinstance(value, _CONTAINER_NODES):
                mnode.global_containers[target.id] = stmt.lineno

    def _class_known(self, mnode: ModuleNode, cname: str) -> bool:
        if any(f.cls == cname for f in mnode.functions.values()):
            return True
        if cname in mnode.imported_names:
            src, orig = mnode.imported_names[cname]
            target = self._module_by_dotted.get(src)
            if target is not None:
                return any(f.cls == orig for f in target.functions.values())
        return any(f.cls == cname for f in self.functions.values())

    # -- dispatch collection -----------------------------------------------
    def _collect_dispatch(self) -> None:
        """Populate dispatch tables before edge resolution runs.

        Three sweeps: module-level facts (dict-literal tables, loop-bound
        function names), registrar methods (``self.<attr>[k] = param``),
        then every call site of a registrar — module-level registration
        loops included — harvesting the function values registered.
        """
        for mnode in self.by_module.values():
            for stmt in mnode.module.tree.body:
                self._index_dispatch_table(mnode, stmt)
                self._index_loop_functions(mnode, stmt)
        self._registrars = self._find_registrars()
        for mnode in self.by_module.values():
            for call, fnode in self._all_calls(mnode):
                self._harvest_registration(mnode, fnode, call)

    def _index_dispatch_table(self, mnode: ModuleNode, stmt: ast.stmt) -> None:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        if not isinstance(stmt.value, ast.Dict):
            return
        fids: list[str] = []
        for value in stmt.value.values:
            fids.extend(self._module_level_ref(mnode, value))
        if not fids:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                mnode.dispatch_tables[target.id] = tuple(dict.fromkeys(fids))

    def _index_loop_functions(self, mnode: ModuleNode, stmt: ast.stmt) -> None:
        """``for _factory, _x in ((f1, ...), (f2, ...)):`` binds ``_factory``
        to the candidate set {f1, f2, ...} for registration harvesting."""
        if not isinstance(stmt, ast.For) or not isinstance(
                stmt.iter, (ast.Tuple, ast.List)):
            return
        targets = (stmt.target.elts if isinstance(stmt.target, ast.Tuple)
                   else [stmt.target])
        for pos, target in enumerate(targets):
            if not isinstance(target, ast.Name):
                continue
            fids: list[str] = []
            for element in stmt.iter.elts:
                if isinstance(element, (ast.Tuple, ast.List)):
                    item = (element.elts[pos] if pos < len(element.elts)
                            else None)
                else:
                    item = element if len(targets) == 1 else None
                if item is not None:
                    fids.extend(self._module_level_ref(mnode, item))
            if fids:
                mnode.loop_functions[target.id] = tuple(dict.fromkeys(fids))

    def _module_level_ref(self, mnode: ModuleNode,
                          expr: ast.expr) -> tuple[str, ...]:
        """Resolve a function-valued expression in module-level scope."""
        if isinstance(expr, ast.Name):
            own = mnode.functions.get(expr.id)
            if own is not None:
                return (own.fid,)
            if expr.id in mnode.imported_names:
                src, orig = mnode.imported_names[expr.id]
                target = self._module_by_dotted.get(src)
                if target is not None and orig in target.functions:
                    return (target.functions[orig].fid,)
        elif isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            base = expr.value.id
            dotted = None
            if base in mnode.import_aliases:
                dotted = mnode.import_aliases[base]
            elif base in mnode.imported_names:  # `from pkg import submodule`
                src, orig = mnode.imported_names[base]
                dotted = f"{src}.{orig}" if src else orig
            if dotted is not None:
                target = self._module_by_dotted.get(dotted)
                if target is not None and expr.attr in target.functions:
                    return (target.functions[expr.attr].fid,)
        return ()

    def _find_registrars(self) -> dict[str, list[tuple[str, str]]]:
        """Methods that store one of their parameters into a subscripted
        ``self`` attribute: fid -> [(attr name, parameter name)]."""
        registrars: dict[str, list[tuple[str, str]]] = {}
        for fnode in self.functions.values():
            if fnode.cls is None:
                continue
            params = {a.arg for a in fnode.node.args.args
                      + fnode.node.args.kwonlyargs}
            for node in _walk_skip_defs(fnode.node):
                if not (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Subscript)):
                    continue
                container = node.targets[0].value
                if (isinstance(container, ast.Attribute)
                        and isinstance(container.value, ast.Name)
                        and container.value.id == "self"
                        and isinstance(node.value, ast.Name)
                        and node.value.id in params):
                    registrars.setdefault(fnode.fid, []).append(
                        (container.attr, node.value.id))
        return registrars

    def _all_calls(self, mnode: ModuleNode):
        """Every call expression in a module with its enclosing function
        (None for module-level code such as registration loops)."""
        for stmt in mnode.module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    yield node, None
        for fnode in mnode.functions.values():
            for node in _walk_skip_defs(fnode.node):
                if isinstance(node, ast.Call):
                    yield node, fnode

    def _harvest_registration(self, mnode: ModuleNode,
                              fnode: FunctionNode | None,
                              call: ast.Call) -> None:
        nested = self.nested_defs(mnode, fnode) if fnode is not None else {}
        for fid in self._resolve_call(mnode, fnode, nested, call):
            specs = self._registrars.get(fid)
            if not specs:
                continue
            callee = self.functions[fid]
            params = [a.arg for a in callee.node.args.args]
            if params and params[0] in ("self", "cls"):
                params = params[1:]
            for attr, param_name in specs:
                arg = None
                for keyword in call.keywords:
                    if keyword.arg == param_name:
                        arg = keyword.value
                if arg is None and param_name in params:
                    index = params.index(param_name)
                    if index < len(call.args) and not any(
                            isinstance(a, ast.Starred) for a in call.args):
                        arg = call.args[index]
                if arg is None:
                    continue
                values = self._function_value(mnode, fnode, nested, arg)
                if values:
                    self.dispatch_targets.setdefault(
                        (callee.cls, attr), set()).update(values)

    def _function_value(self, mnode: ModuleNode, fnode: FunctionNode | None,
                        nested: dict[str, FunctionNode],
                        expr: ast.expr) -> tuple[str, ...]:
        """The function(s) an expression evaluates to, for registration."""
        direct = self._resolve_reference(mnode, fnode, nested, expr)
        if direct:
            return direct
        if isinstance(expr, ast.Name) and expr.id in mnode.loop_functions:
            return mnode.loop_functions[expr.id]
        if isinstance(expr, ast.Call):  # factory(...) returning a nested def
            out: list[str] = []
            for fid in self._resolve_call(mnode, fnode, nested, expr):
                out.extend(self._returned_functions(fid))
            return tuple(dict.fromkeys(out))
        return ()

    def _returned_functions(self, fid: str) -> tuple[str, ...]:
        """fids a function returns by name (``return factory`` closures)."""
        fnode = self.functions.get(fid)
        if fnode is None:
            return ()
        mnode = self.by_module[fnode.module.display]
        nested = self.nested_defs(mnode, fnode)
        out: list[str] = []
        for node in _walk_skip_defs(fnode.node):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
                name = node.value.id
                if name in nested:
                    out.append(nested[name].fid)
                elif name in mnode.functions:
                    out.append(mnode.functions[name].fid)
        return tuple(dict.fromkeys(out))

    # -- resolution --------------------------------------------------------
    def _resolve_module(self, mnode: ModuleNode) -> None:
        for fnode in mnode.functions.values():
            self._resolve_function(mnode, fnode)

    def _resolve_function(self, mnode: ModuleNode,
                          fnode: FunctionNode) -> None:
        nested = self.nested_defs(mnode, fnode)
        for node in _walk_skip_defs(fnode.node):
            if isinstance(node, ast.Call):
                targets = self._resolve_call(mnode, fnode, nested, node)
                if targets:
                    fnode.calls.append(CallSite(
                        node=node, lineno=node.lineno, targets=targets))
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    ref = self._resolve_reference(mnode, fnode, nested, arg)
                    if ref:
                        fnode.refs.append(CallSite(
                            node=arg, lineno=arg.lineno, targets=ref,
                            via_reference=True))

    def _resolve_call(self, mnode: ModuleNode, fnode: FunctionNode | None,
                      nested: dict[str, FunctionNode],
                      node: ast.Call) -> tuple[str, ...]:
        func = node.func
        if isinstance(func, ast.Name):
            return self._resolve_bare(mnode, fnode, nested, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(mnode, fnode, func)
        if isinstance(func, ast.Subscript):
            return self._resolve_subscript(mnode, fnode, func)
        return ()

    def _resolve_subscript(self, mnode: ModuleNode,
                           fnode: FunctionNode | None,
                           func: ast.Subscript) -> tuple[str, ...]:
        """``TABLE[key]()`` / ``self._factories[key]()`` dispatch."""
        base = func.value
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and fnode is not None and fnode.cls):
            candidates = self.dispatch_targets.get((fnode.cls, base.attr))
            if candidates:
                return tuple(sorted(candidates))
        if isinstance(base, ast.Name):
            if base.id in mnode.dispatch_tables:
                return mnode.dispatch_tables[base.id]
            if base.id in mnode.imported_names:
                src, orig = mnode.imported_names[base.id]
                target = self._module_by_dotted.get(src)
                if target is not None and orig in target.dispatch_tables:
                    return target.dispatch_tables[orig]
        return ()

    def _resolve_bare(self, mnode: ModuleNode, fnode: FunctionNode | None,
                      nested: dict[str, FunctionNode],
                      name: str) -> tuple[str, ...]:
        if name in nested:                                    # tier 1
            return (nested[name].fid,)
        own = mnode.functions.get(name)                       # tier 2
        if own is not None:
            return (own.fid,)
        if name in mnode.imported_names:                      # tier 3
            src, orig = mnode.imported_names[name]
            target = self._module_by_dotted.get(src)
            if target is not None and orig in target.functions:
                return (target.functions[orig].fid,)
            return ()
        candidates = self.by_name.get(name, ())               # tiers 6/7
        if len(candidates) == 1:
            return (candidates[0].fid,)
        return tuple(c.fid for c in candidates)

    def _resolve_attribute(self, mnode: ModuleNode,
                           fnode: FunctionNode | None,
                           func: ast.Attribute) -> tuple[str, ...]:
        method = func.attr
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "self" and fnode is not None and fnode.cls:
                own = mnode.functions.get(f"{fnode.cls}.{method}")
                if own is not None:
                    return (own.fid,)
            if base.id in mnode.import_aliases:                # alias.f()
                target = self._module_by_dotted.get(
                    mnode.import_aliases[base.id])
                if target is not None and method in target.functions:
                    return (target.functions[method].fid,)
            cls = self._instance_class(mnode, base.id)         # INSTANCE.m()
            if cls is not None:
                resolved = self._resolve_method(mnode, cls, method)
                if resolved:
                    return resolved
            if base.id in mnode.imported_names:                # imported inst
                src, orig = mnode.imported_names[base.id]
                target = self._module_by_dotted.get(src)
                if target is not None:
                    cls = target.instance_classes.get(orig)
                    if cls is not None:
                        resolved = self._resolve_method(target, cls, method)
                        if resolved:
                            return resolved
        # tier 6/7 over methods by bare name
        candidates = [c for c in self.by_name.get(method, ())
                      if c.cls is not None]
        if len(candidates) == 1:
            return (candidates[0].fid,)
        return tuple(c.fid for c in candidates)

    def _instance_class(self, mnode: ModuleNode, name: str) -> str | None:
        return mnode.instance_classes.get(name)

    def _resolve_method(self, mnode: ModuleNode, cls: str,
                        method: str) -> tuple[str, ...]:
        own = mnode.functions.get(f"{cls}.{method}")
        if own is not None:
            return (own.fid,)
        if cls in mnode.imported_names:
            src, orig = mnode.imported_names[cls]
            target = self._module_by_dotted.get(src)
            if target is not None:
                theirs = target.functions.get(f"{orig}.{method}")
                if theirs is not None:
                    return (theirs.fid,)
        candidates = [f for f in self.functions.values()
                      if f.cls == cls and f.name == method]
        if len(candidates) == 1:
            return (candidates[0].fid,)
        return ()

    def _resolve_reference(self, mnode: ModuleNode,
                           fnode: FunctionNode | None,
                           nested: dict[str, FunctionNode],
                           arg: ast.expr) -> tuple[str, ...]:
        """Function values passed as arguments (pool.map targets, builders)."""
        if isinstance(arg, ast.Name):
            if arg.id in nested:
                return (nested[arg.id].fid,)
            own = mnode.functions.get(arg.id)
            if own is not None:
                return (own.fid,)
            if arg.id in mnode.imported_names:
                src, orig = mnode.imported_names[arg.id]
                target = self._module_by_dotted.get(src)
                if target is not None and orig in target.functions:
                    return (target.functions[orig].fid,)
        elif isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
            if arg.value.id == "self" and fnode is not None and fnode.cls:
                own = mnode.functions.get(f"{fnode.cls}.{arg.attr}")
                if own is not None:
                    return (own.fid,)
        return ()

    # -- public resolution API (used by the effects pass) ------------------
    def nested_defs(self, mnode: ModuleNode,
                    fnode: FunctionNode) -> dict[str, FunctionNode]:
        """Direct nested ``def``s of ``fnode``, by bare name."""
        prefix = fnode.qualname + "."
        return {f.name: f for q, f in mnode.functions.items()
                if q.startswith(prefix) and "." not in q[len(prefix):]}

    def resolve_module(self, dotted: str) -> ModuleNode | None:
        """ModuleNode for a package-relative dotted name (``engine.cache``)."""
        return self._module_by_dotted.get(dotted)

    def resolve_call(self, mnode: ModuleNode, fnode: FunctionNode,
                     nested: dict[str, FunctionNode],
                     node: ast.Call) -> tuple[str, ...]:
        """Resolve one call expression in ``fnode``'s scope to target fids."""
        return self._resolve_call(mnode, fnode, nested, node)

    def resolve_reference(self, mnode: ModuleNode, fnode: FunctionNode,
                          nested: dict[str, FunctionNode],
                          arg: ast.expr) -> tuple[str, ...]:
        """Resolve a function-valued expression (builder, pool target)."""
        return self._resolve_reference(mnode, fnode, nested, arg)

    # -- queries -----------------------------------------------------------
    def successors(self, fid: str) -> set[str]:
        fnode = self.functions.get(fid)
        if fnode is None:
            return set()
        out: set[str] = set()
        for site in fnode.calls + fnode.refs:
            out.update(site.targets)
        return out

    def reachable(self, roots: list[str]) -> set[str]:
        """All fids reachable from the given root fids (roots included)."""
        seen: set[str] = set()
        frontier = [fid for fid in roots if fid in self.functions]
        while frontier:
            fid = frontier.pop()
            if fid in seen:
                continue
            seen.add(fid)
            frontier.extend(self.successors(fid) - seen)
        return seen

    def find(self, suffix: str) -> list[str]:
        """fids whose ``module:qualname`` ends with ``suffix`` (root lookup)."""
        return [fid for fid in self.functions
                if fid == suffix or fid.endswith(suffix)]


def build(modules: list[SourceModule]) -> CallGraph:
    return CallGraph(modules)
