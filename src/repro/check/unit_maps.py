"""Declarative unit conventions the units checker anchors on.

The static units pass (:mod:`repro.check.units`) infers dimensions from
three sources of truth, all declared here or in
:mod:`repro.core.quantity`:

1. the ``Quantity`` subclass hierarchy and its :data:`~repro.core.quantity.DIMENSIONS`
   registry (``Seconds(...)`` constructs a time, ``Joules.from_mj`` an
   energy, ...);
2. the package-wide *unit-suffix naming convention*: an identifier whose
   trailing token(s) name a unit carries that unit — ``latency_s`` is a
   duration in seconds, ``energy_mj`` an energy in millijoules,
   ``bandwidth_bytes_per_s`` a rate, ``r_passive_c_per_w`` a thermal
   resistance;
3. the curated maps below for names the grammar cannot classify — known
   dimensionless quantities (``efficiency``, ``utilization``), identifiers
   whose trailing token merely *looks* like a unit (``_inception_c`` is an
   Inception block, not a temperature), and calls with well-known returns.

Keep this module dependency-light: it is data, not analysis.
"""

from __future__ import annotations

from repro.core.dimension import (
    BYTES,
    DIMENSIONLESS,
    ENERGY,
    ENERGY_DELAY,
    FREQUENCY,
    OPS,
    POWER,
    TEMPERATURE,
    TIME,
    Dim,
)
from repro.core.quantity import (
    GIBI,
    GIGA,
    KIBI,
    KILO,
    MEBI,
    MEGA,
    MICRO,
    MILLI,
    TERA,
)

#: suffix token -> (dimension, presentation scale in SI units).
UNIT_TOKENS: dict[str, tuple[Dim, float]] = {
    # time
    "s": (TIME, 1.0),
    "sec": (TIME, 1.0),
    "secs": (TIME, 1.0),
    "seconds": (TIME, 1.0),
    "ms": (TIME, MILLI),
    "us": (TIME, MICRO),
    "ns": (TIME, 1e-9),
    "hr": (TIME, 3600.0),
    "hrs": (TIME, 3600.0),
    "hours": (TIME, 3600.0),
    # energy
    "j": (ENERGY, 1.0),
    "joules": (ENERGY, 1.0),
    "mj": (ENERGY, MILLI),
    "wh": (ENERGY, 3600.0),
    "kwh": (ENERGY, 3.6e6),
    # power
    "w": (POWER, 1.0),
    "watts": (POWER, 1.0),
    "mw": (POWER, MILLI),
    "kw": (POWER, KILO),
    # frequency
    "hz": (FREQUENCY, 1.0),
    "fps": (FREQUENCY, 1.0),
    "rps": (FREQUENCY, 1.0),  # requests/inferences per second
    "khz": (FREQUENCY, KILO),
    "mhz": (FREQUENCY, MEGA),
    "ghz": (FREQUENCY, GIGA),
    # temperature
    "c": (TEMPERATURE, 1.0),
    "celsius": (TEMPERATURE, 1.0),
    "degc": (TEMPERATURE, 1.0),
    # bytes
    "bytes": (BYTES, 1.0),
    "kib": (BYTES, float(KIBI)),
    "mib": (BYTES, float(MEBI)),
    "gib": (BYTES, float(GIBI)),
    # operation counts (the paper counts MACs)
    "macs": (OPS, 1.0),
    "flops": (OPS, 1.0),
    "gmacs": (OPS, GIGA),
    "gflops": (OPS, GIGA),
}

#: trailing tokens that mark a value as an explicit pure number.
DIMENSIONLESS_TOKENS = frozenset({
    "count", "counts", "efficiency", "factor", "fraction", "inferences",
    "iterations", "multiplier", "pct", "percent", "ratio", "runs",
    "samples", "share", "utilization",
})

#: single-token names too short/ambiguous to classify on their own
#: (``latency_s`` is seconds; a bare ``s`` is usually a loop variable).
AMBIGUOUS_BARE_TOKENS = frozenset({"s", "j", "w", "c", "us", "ns"})

#: compound suffixes (products, not per-ratios), matched before the grammar.
COMPOUND_SUFFIXES: dict[str, tuple[Dim, float]] = {
    "mj_ms": (ENERGY_DELAY, MILLI * MILLI),  # energy-delay product columns
    "j_s": (ENERGY_DELAY, 1.0),
}

#: bare names that are dimensionless by convention, wherever they appear.
DIMENSIONLESS_NAMES = frozenset({
    "batch_fill", "derate", "efficiency", "jitter_fraction", "occupancy",
    "relative", "sparsity", "speedup", "utilization",
})

#: identifiers whose trailing token is NOT a unit (model-builder blocks,
#: acronyms); the suffix grammar skips them entirely.
NON_QUANTITY_NAMES = frozenset({
    "_inception_b",
    "_inception_c",
    "_reduction_b",
    "ed2p",
    "from_bytes",  # int.from_bytes builds an integer, not a byte count
    "to_bytes",
})

#: names of the scale constants in :mod:`repro.core.quantity`; multiplying
#: or dividing by one is a *unit conversion* the checker tracks exactly.
SCALE_CONSTANTS: dict[str, float] = {
    "MILLI": MILLI,
    "MICRO": MICRO,
    "KILO": KILO,
    "MEGA": MEGA,
    "GIGA": GIGA,
    "TERA": TERA,
    "KIBI": float(KIBI),
    "MEBI": float(MEBI),
    "GIBI": float(GIBI),
}

#: bare numeric literals that read as unit conversions rather than physical
#: scalings; scaling by one of these makes the presentation scale unknown
#: instead of wrong (``latency * 1e3`` may produce ms — or kiloseconds).
CONVERSION_LITERALS = frozenset({
    1e-12, 1e-9, 1e-6, 1e-3, 1e3, 1e6, 1e9, 1e12,
    float(KIBI), float(MEBI), float(GIBI),
})

#: calls with well-known returns that the suffix grammar cannot see.
#: Keyed by the call's terminal name; value is (dimension, scale) or None
#: for "known non-quantity" (strings, containers).
CALL_RETURNS: dict[str, tuple[Dim, float] | None] = {
    "perf_counter": (TIME, 1.0),
    "monotonic": (TIME, 1.0),
    "perf_counter_ns": (TIME, 1e-9),
    "monotonic_ns": (TIME, 1e-9),
    "choose_run_count": (DIMENSIONLESS, 1.0),
    "format_bytes": None,
    "format_seconds": None,
}

#: dimension-preserving reductions: the result has the dimension of the
#: first argument (or of the elements of the first argument).
PRESERVING_CALLS = frozenset({
    "abs", "amax", "amin", "average", "fabs", "float", "fmean", "max",
    "maximum", "mean", "median", "min", "minimum", "nanmax", "nanmean",
    "nanmin", "percentile", "pstdev", "quantile", "sorted", "std", "stdev",
    "sum",
})
