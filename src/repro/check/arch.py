"""Architectural linter: `ast`-based contract checks over ``src/repro``.

PR 2's runtime layer introduced contracts that convention alone cannot hold:
all measurement goes through the :class:`~repro.runtime.runner.Runner`, the
old string-triple helpers are migration shims only, and everything the
engine memoizes must be pure.  This pass walks the package source and
enforces them:

* **ARCH001** — no direct ``InferenceSession``/``InferenceTimer``
  construction outside the ``runtime``/``engine``/``measurement`` layers.
  Simulation code that prices ad-hoc deployments (split planners, batch
  servers) carries an explicit inline suppression instead.
* **ARCH002** — no call sites of the deprecated wrappers
  (``measurement_seed``, ``cell_timer``, ``measure_latency_s``,
  ``build_session``, ``best_framework_latency``, ``engine.cache.deploy_key``).
* **ARCH003** — no ``==``/``!=`` against float literals; physics code
  compares with tolerances or sentinels.
* **ARCH004** — no nondeterministic calls (``random``, wall-clock ``time``,
  ``uuid``, ``secrets``, unseeded ``default_rng``) in the pure cached paths
  (``engine``/``graphs``/``frameworks``/``models``/``hardware``), which the
  ``engine.cache`` purity contract relies on.
* **ARCH005** — the sweep compiler (``engine/compile.py``) is a pure
  lowering pass: no session/timer/meter construction (ARCH001's engine-layer
  exemption does not extend to it), no RNG even seeded, and no wall clock —
  its ``*_s`` compile stats are stamped by the driver.
* **ARCH006** — the fleet simulator (``fleet/``) is deterministic per seed:
  no wall clock (simulated time only), no ``random``/``uuid``/``secrets``,
  and no ``default_rng`` even seeded — workload randomness enters exclusively
  through seeded ``workloads.arrivals`` processes, so the same pools,
  stream and seed always produce byte-identical reports.
* **ARCH007** — the placement layer (``placement/``) is a deterministic
  search over engine-priced deployments: no wall clock, no RNG even
  seeded (the same model, fleet, link and SLO must always yield the same
  frontier), and — via ARCH001, which has no placement exemption — no
  ad-hoc session construction; pricing goes through the Runner.

Suppress a finding by annotating its line, or a whole module with a
file-level comment (see :mod:`repro.check.suppress` for both forms)::

    session = InferenceSession(deployed)  # repro: allow[ARCH001] simulation
    # repro: allow-file[ARCH003] fixture module full of golden constants

The comment names the rule(s) it silences; anything else still reports.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.check.findings import Finding, Severity
from repro.check.suppress import SuppressionIndex, display_path, relative_parts

RULES: dict[str, tuple[Severity, str]] = {
    "ARCH001": (Severity.ERROR, "sessions/timers are constructed by the runtime layer, "
                                "not ad hoc"),
    "ARCH002": (Severity.ERROR, "deprecated wrapper call; use Scenario/Runner instead"),
    "ARCH003": (Severity.ERROR, "float literal compared with ==/!=; use a tolerance"),
    "ARCH004": (Severity.ERROR, "nondeterministic call in a pure cached path"),
    "ARCH005": (Severity.ERROR, "impure call inside the sweep compiler; compile "
                                "lowers cached inputs to arrays and nothing else"),
    "ARCH006": (Severity.ERROR, "nondeterministic call inside the fleet simulator; "
                                "randomness enters via seeded arrival processes only"),
    "ARCH007": (Severity.ERROR, "nondeterministic call inside the placement layer; "
                                "the same inputs must yield the same frontier"),
}

#: module path prefixes (relative to the repro package) per rule exemption.
_SESSION_LAYERS = ("runtime", "engine", "measurement")
_PURE_LAYERS = ("engine", "graphs", "frameworks", "models", "hardware")
#: the sweep compiler holds a stricter contract than its engine siblings:
#: ARCH001's engine-layer exemption does not apply, RNG is banned even
#: seeded, and wall-clock stats are stamped by the driver (Runner.run_grid).
_COMPILED_MODULE = ("engine", "compile.py")
#: layers promising byte-identical outputs per input: clocks and RNG (even
#: seeded) are banned outright.  layer -> (rule, noun, RNG hint, clock hint).
#: The fleet simulator draws randomness only from seeded arrival processes;
#: the placement layer is a pure search over engine-priced deployments.
_DETERMINISTIC_LAYERS: dict[str, tuple[str, str, str, str]] = {
    "fleet": ("ARCH006", "fleet simulator",
              "draw randomness from a seeded workloads.arrivals process",
              "the event loop keeps simulated time"),
    "placement": ("ARCH007", "placement optimizer",
                  "the search must be reproducible input-for-input",
                  "deployments are priced in engine seconds, not wall time"),
}

_SESSION_TYPES = ("InferenceSession", "InferenceTimer")
_MEASUREMENT_TYPES = ("InferenceSession", "InferenceTimer", "EnergyMeter")
_DEPRECATED_WRAPPERS = ("measurement_seed", "cell_timer", "measure_latency_s",
                        "build_session", "best_framework_latency", "deploy_key")
_TIME_FUNCS = ("time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
               "perf_counter_ns", "process_time", "process_time_ns")
_RANDOM_MODULES = ("random", "secrets", "uuid")


def _dotted_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty for non-name chains."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
        return list(reversed(chain))
    return []


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class _ContractVisitor(ast.NodeVisitor):
    def __init__(self, parts: tuple[str, ...], display: str,
                 suppressions: SuppressionIndex):
        self.parts = parts
        self.display = display
        self.suppressions = suppressions
        self.findings: list[Finding] = []
        self._random_imports: set[str] = set()

    # -- helpers ---------------------------------------------------------
    def _layer(self) -> str:
        return self.parts[0] if len(self.parts) > 1 else ""

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if self.suppressions.allows(rule, lineno):
            return
        self.findings.append(Finding(
            rule, RULES[rule][0], f"{self.display}:{lineno}", message))

    # -- imports feeding ARCH004 ----------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in _RANDOM_MODULES:
            self._random_imports.update(alias.asname or alias.name
                                        for alias in node.names)
        elif node.module == "time":
            self._random_imports.update(
                alias.asname or alias.name for alias in node.names
                if alias.name in _TIME_FUNCS)
        self.generic_visit(node)

    # -- calls -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in _SESSION_TYPES and self._layer() not in _SESSION_LAYERS:
            self._emit("ARCH001", node,
                       f"direct {name} construction outside the runtime layer")
        if name in _DEPRECATED_WRAPPERS:
            self._emit("ARCH002", node, f"call to deprecated wrapper {name}()")
        handled = False
        deterministic = _DETERMINISTIC_LAYERS.get(self._layer())
        if self.parts == _COMPILED_MODULE:
            handled = self._check_compiled_purity(node, name)
        elif deterministic is not None:
            handled = self._check_deterministic_layer(
                node, name, *deterministic)
        if not handled and self._layer() in _PURE_LAYERS:
            self._check_purity(node, name)
        self.generic_visit(node)

    def _check_compiled_purity(self, node: ast.Call, name: str | None) -> bool:
        """ARCH005: the sweep compiler is a pure lowering pass.

        Returns True when the call was judged here (flagged or not), so the
        looser ARCH004 pass does not double-report the same call.
        """
        if name in _MEASUREMENT_TYPES:
            self._emit("ARCH005", node,
                       f"{name} constructed inside the sweep compiler; sessions, "
                       "timers and meters belong to the runtime layer")
            return True
        if name == "default_rng":
            self._emit("ARCH005", node,
                       "RNG in the sweep compiler (even seeded); measurement "
                       "noise belongs to the timing driver")
            return True
        chain = _dotted_chain(node.func)
        if chain:
            root, leaf = chain[0], chain[-1]
            if root in _RANDOM_MODULES or "random" in chain[:-1]:
                self._emit("ARCH005", node,
                           f"nondeterministic call {'.'.join(chain)}() in the "
                           "sweep compiler")
                return True
            if root == "time" and leaf in _TIME_FUNCS:
                self._emit("ARCH005", node,
                           f"wall-clock call {'.'.join(chain)}() in the sweep "
                           "compiler; compile stats are stamped by the driver")
                return True
        if isinstance(node.func, ast.Name) and node.func.id in self._random_imports:
            self._emit("ARCH005", node,
                       f"nondeterministic call {node.func.id}() (imported from a "
                       "random/time module) in the sweep compiler")
            return True
        return False

    def _check_deterministic_layer(self, node: ast.Call, name: str | None,
                                   rule: str, noun: str, rng_hint: str,
                                   clock_hint: str) -> bool:
        """ARCH006/ARCH007: layers that promise byte-identical outputs.

        The fleet simulator's only clock is simulated time and its only
        randomness the seeded arrival processes; the placement optimizer
        must map the same inputs to the same frontier.  Either way, wall
        clocks and RNG (even seeded) are banned.  Returns True when the
        call was judged here, mirroring the ARCH005 handler.
        """
        if name == "default_rng":
            self._emit(rule, node,
                       f"RNG inside the {noun} (even seeded); {rng_hint}")
            return True
        chain = _dotted_chain(node.func)
        if chain:
            root, leaf = chain[0], chain[-1]
            if root in _RANDOM_MODULES or "random" in chain[:-1]:
                self._emit(rule, node,
                           f"nondeterministic call {'.'.join(chain)}() in "
                           f"the {noun}")
                return True
            if root == "time" and leaf in _TIME_FUNCS:
                self._emit(rule, node,
                           f"wall-clock call {'.'.join(chain)}() in the "
                           f"{noun}; {clock_hint}")
                return True
            if root == "datetime" and leaf in ("now", "utcnow", "today"):
                self._emit(rule, node,
                           f"wall-clock call {'.'.join(chain)}() in the "
                           f"{noun}; {clock_hint}")
                return True
        if isinstance(node.func, ast.Name) and node.func.id in self._random_imports:
            self._emit(rule, node,
                       f"nondeterministic call {node.func.id}() (imported "
                       f"from a random/time module) in the {noun}")
            return True
        return False

    def _check_purity(self, node: ast.Call, name: str | None) -> None:
        chain = _dotted_chain(node.func)
        if name == "default_rng":
            # A seeded generator is deterministic; only the argless form
            # (which seeds from the OS) breaks the purity contract.
            if not node.args and not node.keywords:
                self._emit("ARCH004", node, "unseeded default_rng() in a cached path")
            return
        if chain:
            root, leaf = chain[0], chain[-1]
            if root in _RANDOM_MODULES or "random" in chain[:-1]:
                self._emit("ARCH004", node,
                           f"nondeterministic call {'.'.join(chain)}()")
                return
            if root == "time" and leaf in _TIME_FUNCS:
                self._emit("ARCH004", node, f"wall-clock call {'.'.join(chain)}()")
                return
            if root == "os" and leaf == "urandom":
                self._emit("ARCH004", node, "nondeterministic call os.urandom()")
                return
            if root == "datetime" and leaf in ("now", "utcnow", "today"):
                self._emit("ARCH004", node, f"wall-clock call {'.'.join(chain)}()")
                return
        if isinstance(node.func, ast.Name) and node.func.id in self._random_imports:
            self._emit("ARCH004", node,
                       f"nondeterministic call {node.func.id}() (imported from a "
                       "random/time module)")

    # -- comparisons -----------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            if any(isinstance(operand, ast.Constant)
                   and isinstance(operand.value, float)
                   for operand in operands):
                self._emit("ARCH003", node,
                           "float literal compared with ==/!=")
        self.generic_visit(node)


def lint_source(source: str, path: str) -> list[Finding]:
    """Lint one module's source text; ``path`` decides layer exemptions."""
    tree = ast.parse(source, filename=path)
    visitor = _ContractVisitor(relative_parts(path), display_path(path),
                               SuppressionIndex.from_source(source))
    visitor.visit(tree)
    return visitor.findings


def lint_paths(paths: list[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for path in sorted(paths):
        findings += lint_source(path.read_text(), str(path))
    return findings


def package_root() -> Path:
    """Directory of the installed ``repro`` package (the lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def run(root: Path | None = None) -> list[Finding]:
    """Architecture pass entry point: lint every module under ``root``."""
    root = Path(root) if root is not None else package_root()
    return lint_paths(list(root.rglob("*.py")))
