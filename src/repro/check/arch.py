"""Architectural linter: `ast`-based contract checks over ``src/repro``.

PR 2's runtime layer introduced contracts that convention alone cannot hold:
all measurement goes through the :class:`~repro.runtime.runner.Runner`, the
old string-triple helpers are migration shims only, and everything the
engine memoizes must be pure.  This pass walks the package source and
enforces them:

* **ARCH001** — no direct ``InferenceSession``/``InferenceTimer``
  construction outside the ``runtime``/``engine``/``measurement`` layers.
  Simulation code that prices ad-hoc deployments (split planners, batch
  servers) carries an explicit inline suppression instead.
* **ARCH002** — no call sites of the deprecated wrappers
  (``measurement_seed``, ``cell_timer``, ``measure_latency_s``,
  ``build_session``, ``best_framework_latency``, ``engine.cache.deploy_key``).
* **ARCH003** — no ``==``/``!=`` against float literals; physics code
  compares with tolerances or sentinels.
* **ARCH004** — no nondeterministic calls (``random``, wall-clock ``time``,
  ``uuid``, ``secrets``, unseeded ``default_rng``) in the pure cached paths
  (``engine``/``graphs``/``frameworks``/``models``/``hardware``), which the
  ``engine.cache`` purity contract relies on.
* **ARCH005** — the sweep compiler (``engine/compile.py``) is a pure
  lowering pass: no session/timer/meter construction (ARCH001's engine-layer
  exemption does not extend to it), no RNG even seeded, and no wall clock —
  its ``*_s`` compile stats are stamped by the driver.
* **ARCH006** — the fleet simulator (``fleet/``) is deterministic per seed:
  no wall clock (simulated time only), no ``random``/``uuid``/``secrets``,
  and no ``default_rng`` even seeded — workload randomness enters exclusively
  through seeded ``workloads.arrivals`` processes, so the same pools,
  stream and seed always produce byte-identical reports.
* **ARCH007** — the placement layer (``placement/``) is a deterministic
  search over engine-priced deployments: no wall clock, no RNG even
  seeded (the same model, fleet, link and SLO must always yield the same
  frontier), and — via ARCH001, which has no placement exemption — no
  ad-hoc session construction; pricing goes through the Runner.

Suppress a finding by annotating its line, or a whole module with a
file-level comment (see :mod:`repro.check.suppress` for both forms)::

    session = InferenceSession(deployed)  # repro: allow[ARCH001] simulation
    # repro: allow-file[ARCH003] fixture module full of golden constants

The comment names the rule(s) it silences; anything else still reports.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.check import astutil
from repro.check.astutil import NondetCall, classify_nondet
from repro.check.findings import Finding, Severity

RULES: dict[str, tuple[Severity, str]] = {
    "ARCH001": (Severity.ERROR, "sessions/timers are constructed by the runtime layer, "
                                "not ad hoc"),
    "ARCH002": (Severity.ERROR, "deprecated wrapper call; use Scenario/Runner instead"),
    "ARCH003": (Severity.ERROR, "float literal compared with ==/!=; use a tolerance"),
    "ARCH004": (Severity.ERROR, "nondeterministic call in a pure cached path"),
    "ARCH005": (Severity.ERROR, "impure call inside the sweep compiler; compile "
                                "lowers cached inputs to arrays and nothing else"),
    "ARCH006": (Severity.ERROR, "nondeterministic call inside the fleet simulator; "
                                "randomness enters via seeded arrival processes only"),
    "ARCH007": (Severity.ERROR, "nondeterministic call inside the placement layer; "
                                "the same inputs must yield the same frontier"),
}

#: module path prefixes (relative to the repro package) per rule exemption.
_SESSION_LAYERS = ("runtime", "engine", "measurement")
_PURE_LAYERS = ("engine", "graphs", "frameworks", "models", "hardware")
#: the sweep compiler holds a stricter contract than its engine siblings:
#: ARCH001's engine-layer exemption does not apply, RNG is banned even
#: seeded, and wall-clock stats are stamped by the driver (Runner.run_grid).
_COMPILED_MODULE = ("engine", "compile.py")
#: layers promising byte-identical outputs per input: clocks and RNG (even
#: seeded) are banned outright.  layer -> (rule, noun, RNG hint, clock hint).
#: The fleet simulator draws randomness only from seeded arrival processes;
#: the placement layer is a pure search over engine-priced deployments.
_DETERMINISTIC_LAYERS: dict[str, tuple[str, str, str, str]] = {
    "fleet": ("ARCH006", "fleet simulator",
              "draw randomness from a seeded workloads.arrivals process",
              "the event loop keeps simulated time"),
    "placement": ("ARCH007", "placement optimizer",
                  "the search must be reproducible input-for-input",
                  "deployments are priced in engine seconds, not wall time"),
}

_SESSION_TYPES = ("InferenceSession", "InferenceTimer")
_MEASUREMENT_TYPES = ("InferenceSession", "InferenceTimer", "EnergyMeter")
_DEPRECATED_WRAPPERS = ("measurement_seed", "cell_timer", "measure_latency_s",
                        "build_session", "best_framework_latency", "deploy_key")


class _ContractVisitor(ast.NodeVisitor):
    """Walks one module; nondeterminism verdicts come from the shared
    :func:`repro.check.astutil.classify_nondet` catalog, so ARCH004–ARCH007
    and the interprocedural RACE004 rule agree on what "nondeterministic"
    means — one engine, several contracts."""

    def __init__(self, module: astutil.SourceModule):
        self.module = module
        self.parts = module.parts
        self.display = module.display
        self.suppressions = module.suppressions
        self.findings: list[Finding] = []
        self._nondet_imports = astutil.NondetImports()

    # -- helpers ---------------------------------------------------------
    def _layer(self) -> str:
        return self.module.layer

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if self.suppressions.allows(rule, lineno):
            return
        self.findings.append(Finding(
            rule, RULES[rule][0], f"{self.display}:{lineno}", message))

    # -- imports feeding the nondeterminism classifier -------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._nondet_imports.visit_import_from(node)
        self.generic_visit(node)

    # -- calls -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = astutil.call_name(node)
        if name in _SESSION_TYPES and self._layer() not in _SESSION_LAYERS:
            self._emit("ARCH001", node,
                       f"direct {name} construction outside the runtime layer")
        if name in _DEPRECATED_WRAPPERS:
            self._emit("ARCH002", node, f"call to deprecated wrapper {name}()")
        verdict = classify_nondet(node, self._nondet_imports)
        deterministic = _DETERMINISTIC_LAYERS.get(self._layer())
        if self.parts == _COMPILED_MODULE:
            self._check_compiled_purity(node, name, verdict)
        elif deterministic is not None:
            self._check_deterministic_layer(node, verdict, *deterministic)
        elif self._layer() in _PURE_LAYERS:
            self._check_purity(node, verdict)
        self.generic_visit(node)

    def _check_compiled_purity(self, node: ast.Call, name: str | None,
                               verdict: NondetCall | None) -> None:
        """ARCH005: the sweep compiler is a pure lowering pass."""
        if name in _MEASUREMENT_TYPES:
            self._emit("ARCH005", node,
                       f"{name} constructed inside the sweep compiler; sessions, "
                       "timers and meters belong to the runtime layer")
            return
        if verdict is None:
            return
        if verdict.kind in ("rng-seeded", "rng-unseeded"):
            self._emit("ARCH005", node,
                       "RNG in the sweep compiler (even seeded); measurement "
                       "noise belongs to the timing driver")
        elif verdict.kind == "wall-clock":
            self._emit("ARCH005", node,
                       f"wall-clock call {verdict.description} in the sweep "
                       "compiler; compile stats are stamped by the driver")
        else:
            self._emit("ARCH005", node,
                       f"nondeterministic call {verdict.description} in the "
                       "sweep compiler")

    def _check_deterministic_layer(self, node: ast.Call,
                                   verdict: NondetCall | None,
                                   rule: str, noun: str, rng_hint: str,
                                   clock_hint: str) -> None:
        """ARCH006/ARCH007: layers that promise byte-identical outputs.

        The fleet simulator's only clock is simulated time and its only
        randomness the seeded arrival processes; the placement optimizer
        must map the same inputs to the same frontier.  Either way, wall
        clocks and RNG (even seeded) are banned.
        """
        if verdict is None:
            return
        if verdict.kind in ("rng-seeded", "rng-unseeded"):
            self._emit(rule, node,
                       f"RNG inside the {noun} (even seeded); {rng_hint}")
        elif verdict.kind == "wall-clock":
            self._emit(rule, node,
                       f"wall-clock call {verdict.description} in the "
                       f"{noun}; {clock_hint}")
        else:
            self._emit(rule, node,
                       f"nondeterministic call {verdict.description} in "
                       f"the {noun}")

    def _check_purity(self, node: ast.Call,
                      verdict: NondetCall | None) -> None:
        """ARCH004: pure cached layers — seeded RNG alone is exempt, since
        a seeded generator is deterministic; the argless form seeds from
        the OS and breaks the contract."""
        if verdict is None or verdict.deterministic:
            return
        if verdict.kind == "rng-unseeded":
            self._emit("ARCH004", node,
                       "unseeded default_rng() in a cached path")
        elif verdict.kind == "wall-clock":
            self._emit("ARCH004", node,
                       f"wall-clock call {verdict.description}")
        else:
            self._emit("ARCH004", node,
                       f"nondeterministic call {verdict.description}")

    # -- comparisons -----------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            if any(isinstance(operand, ast.Constant)
                   and isinstance(operand.value, float)
                   for operand in operands):
                self._emit("ARCH003", node,
                           "float literal compared with ==/!=")
        self.generic_visit(node)


def lint_module(module: astutil.SourceModule) -> list[Finding]:
    """Lint one pre-parsed module."""
    visitor = _ContractVisitor(module)
    visitor.visit(module.tree)
    return visitor.findings


def lint_source(source: str, path: str) -> list[Finding]:
    """Lint one module's source text; ``path`` decides layer exemptions."""
    return lint_module(astutil.load_source(source, path))


def lint_paths(paths: list[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for path in sorted(paths):
        findings += lint_source(path.read_text(), str(path))
    return findings


#: re-exported so existing callers keep working; astutil owns discovery.
package_root = astutil.package_root


def run(root: Path | None = None,
        modules: list[astutil.SourceModule] | None = None) -> list[Finding]:
    """Architecture pass entry point: lint every module under ``root``.

    ``modules`` shares a pre-parsed package (one parse for all source passes).
    """
    if modules is None:
        modules = astutil.load_package(root)
    return [finding for module in modules for finding in lint_module(module)]
