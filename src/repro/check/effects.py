"""Interprocedural effect inference: `repro check effects`.

The measurement path is a cached, seeded, *parallel* runtime: five
lock-guarded :class:`~repro.engine.cache.MemoCache` globals, the
``run_cells``/``run_grid`` fan-out, the batched sweep compiler and the
fleet event loop.  The single-file ARCH rules can say "no wall clock in
this module"; they cannot say "nothing reachable from ``run_cells``
writes shared state outside a lock" or "this cache builder's result
depends only on what its key encodes".  This pass can.

It builds the package call graph (:mod:`repro.check.callgraph`), infers a
per-function effect summary — global reads/writes and whether writes are
lock-guarded, ``self`` mutations, nondeterministic primitive calls
(via the same :func:`repro.check.astutil.classify_nondet` catalog the
ARCH004–ARCH007 rules use, so determinism has one definition), free /
``self`` reads, cached-value returns, parameter mutations — and
propagates the summaries through the graph to a fixpoint.  Three rule
families consume the result:

* **RACE001–RACE004** — parallel-path safety.  For every function
  reachable from the parallel roots (``Runner.run_cells``, the harness
  sweep runner, the sweep compiler stages, ``simulate_fleet``):
  RACE001 no unguarded module-global rebind; RACE002 no unguarded
  mutation of a module-level container or instance; RACE003 no mutable
  default arguments; RACE004 no call from a declared-pure layer into
  code whose *transitive* effects include true nondeterminism.
* **KEY001–KEY003** — cache-key soundness at every ``get_or_build``
  site.  KEY001 the builder (transitively) reads mutable global state
  the key does not encode; KEY002 the builder closes over values the
  key does not encode (under-keying: two keys, one of which is a lie);
  KEY003 the key encodes values the builder never reads (over-keying:
  identical results stored twice, silently fragmenting the cache).
* **ALIAS001–ALIAS002** — escape analysis.  ALIAS001 an object obtained
  from a ``MemoCache`` primitive (``get_or_build``/``cached_value``/
  ``store``) is mutated — directly or by a callee known to mutate that
  parameter — without an intervening ``clone()``; ALIAS002 a value
  returned *by reference* from a caching function is mutated in place.

Findings go through the shared :class:`~repro.check.findings.Finding`
vocabulary and honor :mod:`repro.check.suppress` comments.

Data-driven dispatch is resolved as candidate sets: ``Registry.create``'s
``self._factories[key]()`` fans out to every function registered through
``Registry.register`` (the device factories, the zoo's per-model
closures), and module-level dict tables like ``check.PASSES`` resolve to
their function values.  The remaining blind spot is ``lambda``
registrations (the experiment generators in
:mod:`repro.harness.registry`), which have no name to resolve and are
covered by the single-file ARCH rules and the runtime stress tests
instead.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path

from repro.check import astutil, callgraph
from repro.check.astutil import NondetImports, SourceModule, classify_nondet
from repro.check.callgraph import CallGraph, FunctionNode, ModuleNode
from repro.check.findings import Finding, Severity

RULES: dict[str, tuple[Severity, str]] = {
    "RACE001": (Severity.ERROR, "module global rebound outside a lock on a "
                                "path reachable from a parallel root"),
    "RACE002": (Severity.ERROR, "module-level container or instance mutated "
                                "outside a lock on a parallel path"),
    "RACE003": (Severity.ERROR, "mutable default argument on a function "
                                "reachable from a parallel root"),
    "RACE004": (Severity.ERROR, "pure-layer function calls into code with "
                                "transitively nondeterministic effects"),
    "KEY001": (Severity.ERROR, "cache builder reads mutable global state "
                               "the cache key does not encode"),
    "KEY002": (Severity.ERROR, "cache builder closes over values the cache "
                               "key does not encode (under-keyed)"),
    "KEY003": (Severity.WARNING, "cache key encodes values the builder never "
                                 "reads (over-keyed; fragments the cache)"),
    "ALIAS001": (Severity.ERROR, "object obtained from a memo cache mutated "
                                 "without an intervening clone()"),
    "ALIAS002": (Severity.ERROR, "value returned by reference from a caching "
                                 "function mutated in place"),
}

#: the entry points whose fan-out makes everything below them concurrent.
PARALLEL_ROOTS = (
    "runtime/runner.py:Runner.run_cells",
    "harness/sweep_runner.py:run_sweep",
    "harness/sweep_runner.py:run_scenarios",
    "engine/compile.py:compile_cells",
    "engine/compile.py:gather",
    "engine/compile.py:lower",
    "engine/compile.py:scatter",
    "fleet/simulate.py:simulate_fleet",
)

#: layers whose functions the engine caches or replays and therefore must
#: not acquire nondeterministic effects, even transitively.  Mirrors the
#: ARCH004 pure layers plus the ARCH006/ARCH007 deterministic layers.
PURE_LAYERS = ("engine", "graphs", "frameworks", "models", "hardware",
               "fleet", "placement")

#: NondetCall kinds that are genuinely irreproducible.  Seeded RNG is
#: excluded: it is deterministic, and only the single-module ARCH005–007
#: contracts ban it stylistically.
TRUE_NONDET = ("rng-unseeded", "random-module", "wall-clock", "urandom",
               "imported")

_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse",
    "appendleft", "extendleft",
})
_CLONERS = frozenset({"clone", "copy", "deepcopy", "replace"})
_CACHE_PRIMITIVES = ("get_or_build", "cached_value")
_MUTABLE_DEFAULT_CALLS = ("dict", "list", "set", "defaultdict", "deque")


# -- effect summaries ------------------------------------------------------
@dataclass(frozen=True)
class Write:
    """One write effect: target, site, and whether a lock guarded it."""

    qual: str
    lineno: int
    guarded: bool
    detail: str


@dataclass(frozen=True)
class InstanceCall:
    """A method call on a module-level instance (shared state by another name)."""

    qual: str
    method: str
    lineno: int
    targets: tuple[str, ...]


@dataclass
class Origin:
    """Where a local name's value came from (for the ALIAS rules)."""

    kind: str  # "cache-primitive" | "call" | "clone" | "other"
    lineno: int
    targets: tuple[str, ...] = ()
    detail: str = ""


@dataclass
class Mutation:
    """One in-place mutation of a local name."""

    name: str
    lineno: int
    detail: str


@dataclass
class FunctionEffects:
    """Per-function effect summary; ``trans_*`` fields are fixpoint results."""

    fid: str
    reads: set[str] = field(default_factory=set)
    rebinds: list[Write] = field(default_factory=list)
    mutations: list[Write] = field(default_factory=list)
    unguarded_self_writes: list[Write] = field(default_factory=list)
    self_calls: set[str] = field(default_factory=set)
    instance_calls: list[InstanceCall] = field(default_factory=list)
    mutable_defaults: list[tuple[str, int]] = field(default_factory=list)
    nondet: dict[str, tuple[str, int]] = field(default_factory=dict)
    free_reads: set[str] = field(default_factory=set)
    self_reads: set[str] = field(default_factory=set)
    params: tuple[str, ...] = ()
    param_mut: set[str] = field(default_factory=set)
    forwards: list[tuple[tuple[str, ...], str, str]] = field(default_factory=list)
    returns_cached: bool = False
    return_calls: set[str] = field(default_factory=set)
    origins: dict[str, list[Origin]] = field(default_factory=dict)
    local_mutations: list[Mutation] = field(default_factory=list)
    key_sites: list["KeySite"] = field(default_factory=list)
    # fixpoint accumulators
    trans_reads: set[str] = field(default_factory=set)
    trans_nondet: dict[str, tuple[str, str]] = field(default_factory=dict)
    trans_self_mut: bool = False


@dataclass
class KeySite:
    """One ``get_or_build(key, builder)`` call site, pre-digested."""

    lineno: int
    receiver: str
    key_names: set[str]
    key_self_attrs: set[str]
    key_name_is: str | None
    builder_desc: str
    builder_fids: tuple[str, ...]
    lambda_global_reads: set[str] = field(default_factory=set)
    lambda_free_reads: set[str] = field(default_factory=set)
    lambda_params: set[str] = field(default_factory=set)
    lambda_call_fids: tuple[str, ...] = ()
    unresolved: bool = False


# -- module namespace facts -----------------------------------------------
def _module_globals(mod: SourceModule) -> set[str]:
    """Names assigned at module level (the shared-state namespace)."""
    names: set[str] = set()
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


def _module_scope_names(mnode: ModuleNode) -> set[str]:
    """Everything resolvable at module scope: globals, defs, classes, imports."""
    mod = mnode.module
    names = _module_globals(mod)
    for stmt in mod.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Import):
            names.update(alias.asname or alias.name.split(".")[0]
                         for alias in stmt.names)
        elif isinstance(stmt, ast.ImportFrom):
            names.update(alias.asname or alias.name for alias in stmt.names)
    return names


def _is_lock_guard(node: ast.With | ast.AsyncWith) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        chain = astutil.dotted_chain(expr)
        if any("lock" in part.lower() for part in chain):
            return True
    return False


def _is_cache_primitive(func: ast.Attribute) -> bool:
    """``X.get_or_build`` / ``X.cached_value`` always; ``X.store`` only when
    the receiver chain names a cache (``PLAN_CACHE.store``), since ``store``
    is a common method name."""
    if func.attr in _CACHE_PRIMITIVES:
        return True
    if func.attr == "store":
        chain = astutil.dotted_chain(func.value)
        return any("CACHE" in part.upper() and part.isupper()
                   for part in chain)
    return False


def _is_clone_expr(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and astutil.call_name(node) in _CLONERS)


def _mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_DEFAULT_CALLS
            and not node.args and not node.keywords)


# -- per-function local analysis ------------------------------------------
class _FunctionAnalyzer:
    """Single-function effect extraction (nested defs analyzed separately)."""

    def __init__(self, graph: CallGraph, mnode: ModuleNode,
                 fnode: FunctionNode, module_globals: set[str],
                 scope_names: set[str], nondet_imports: NondetImports):
        self.graph = graph
        self.mnode = mnode
        self.fnode = fnode
        self.module_globals = module_globals
        self.scope_names = scope_names
        self.nondet_imports = nondet_imports
        self.eff = FunctionEffects(fid=fnode.fid)
        self.guard_depth = 0
        self.global_decls: set[str] = set()
        self.local_bound: set[str] = set()
        self.nested = graph.nested_defs(mnode, fnode)
        self._call_func_names: set[int] = set()

    # .. entry ............................................................
    def analyze(self) -> FunctionEffects:
        node = self.fnode.node
        args = node.args
        params = [a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        self.eff.params = tuple(params)
        self.local_bound.update(params)
        positional = [a.arg for a in args.posonlyargs + args.args]
        defaulted = positional[len(positional) - len(args.defaults):]
        for name, default in zip(defaulted, args.defaults):
            if _mutable_default(default):
                self.eff.mutable_defaults.append((name, node.lineno))
        for kwarg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None and _mutable_default(default):
                self.eff.mutable_defaults.append((kwarg.arg, node.lineno))
        self._prescan_bindings(node.body)
        for stmt in node.body:
            self._visit(stmt)
        return self.eff

    def _prescan_bindings(self, body: list[ast.stmt]) -> None:
        """Collect every locally bound name first, so reads before the
        binding line (loops, forward refs) don't misreport as globals."""
        for stmt in body:
            for node in self._walk_own(stmt):
                if isinstance(node, ast.Name) and isinstance(
                        node.ctx, (ast.Store, ast.Del)):
                    self.local_bound.add(node.id)
                elif isinstance(node, ast.Global):
                    self.global_decls.update(node.names)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                       ast.ClassDef)):
                    self.local_bound.add(node.name)
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    self.local_bound.update(alias.asname or
                                            alias.name.split(".")[0]
                                            for alias in node.names)
        self.local_bound -= self.global_decls

    def _walk_own(self, node: ast.AST):
        """ast.walk that does not descend into nested function defs."""
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._walk_own(child)

    # .. recursive statement/expression visit .............................
    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs have their own FunctionNode
        if isinstance(node, (ast.With, ast.AsyncWith)):
            guarded = _is_lock_guard(node)
            if guarded:
                self.guard_depth += 1
            for item in node.items:
                self._visit(item.context_expr)
            for stmt in node.body:
                self._visit(stmt)
            if guarded:
                self.guard_depth -= 1
            return
        handler = {
            ast.Assign: self._on_assign,
            ast.AnnAssign: self._on_annassign,
            ast.AugAssign: self._on_augassign,
            ast.Delete: self._on_delete,
            ast.Return: self._on_return,
            ast.Call: self._on_call,
            ast.Name: self._on_name,
            ast.Attribute: self._on_attribute,
        }.get(type(node))
        if handler is not None:
            handler(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # .. name classification ..............................................
    def _global_qual(self, name: str) -> str | None:
        """Qualified id for a module-global (own or imported), else None."""
        if name in self.local_bound:
            return None
        if name in self.global_decls or name in self.module_globals:
            return f"{self.mnode.module.display}:{name}"
        if name in self.mnode.imported_names:
            src, orig = self.mnode.imported_names[name]
            target = self.graph.resolve_module(src)
            if target is not None and orig in _module_globals(target.module):
                return f"{target.module.display}:{orig}"
        return None

    def _on_name(self, node: ast.Name) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        qual = self._global_qual(node.id)
        if qual is not None:
            self.eff.reads.add(qual)
            return
        if (node.id not in self.local_bound
                and node.id not in self.scope_names
                and id(node) not in self._call_func_names
                and not hasattr(builtins, node.id)):
            self.eff.free_reads.add(node.id)

    def _on_attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load) and isinstance(node.value, ast.Name):
            if node.value.id == "self":
                self.eff.self_reads.add(node.attr)
            elif node.value.id in self.mnode.import_aliases:
                target = self.graph.resolve_module(
                    self.mnode.import_aliases[node.value.id])
                if target is not None and node.attr in _module_globals(
                        target.module):
                    self.eff.reads.add(
                        f"{target.module.display}:{node.attr}")

    # .. writes ...........................................................
    def _guarded(self) -> bool:
        return self.guard_depth > 0

    def _on_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._store_target(target, node)
        self._record_origin(node.targets, node.value)

    def _on_annassign(self, node: ast.AnnAssign) -> None:
        self._store_target(node.target, node)
        if node.value is not None:
            self._record_origin([node.target], node.value)

    def _on_augassign(self, node: ast.AugAssign) -> None:
        self._store_target(node.target, node, aug=True)

    def _on_delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._container_write(target.value, node.lineno,
                                      "del container[...]")

    def _store_target(self, target: ast.expr, node: ast.stmt,
                      aug: bool = False) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.global_decls:
                qual = f"{self.mnode.module.display}:{target.id}"
                self.eff.rebinds.append(Write(
                    qual, node.lineno, self._guarded(),
                    f"global {target.id} rebound"))
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name):
                if target.value.id == "self":
                    write = Write(f"self.{target.attr}", node.lineno,
                                  self._guarded(),
                                  f"self.{target.attr} assigned")
                    if not write.guarded:
                        self.eff.unguarded_self_writes.append(write)
                else:
                    self._attr_write(target.value.id, target.attr,
                                     node.lineno)
        elif isinstance(target, ast.Subscript):
            self._container_write(target.value, node.lineno,
                                  "container[...] assigned")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store_target(element, node, aug=aug)

    def _attr_write(self, base: str, attr: str, lineno: int) -> None:
        qual = self._global_qual(base)
        if qual is not None:
            self.eff.mutations.append(Write(
                qual, lineno, self._guarded(), f"{base}.{attr} assigned"))
        else:
            self.eff.local_mutations.append(Mutation(
                base, lineno, f"{base}.{attr} assigned"))
            if base in self.eff.params:
                self.eff.param_mut.add(base)

    def _container_write(self, base: ast.expr, lineno: int,
                         detail: str) -> None:
        if isinstance(base, ast.Name):
            qual = self._global_qual(base.id)
            if qual is not None:
                self.eff.mutations.append(Write(
                    qual, lineno, self._guarded(), detail))
            else:
                self.eff.local_mutations.append(
                    Mutation(base.id, lineno, detail))
                if base.id in self.eff.params:
                    self.eff.param_mut.add(base.id)
        elif (isinstance(base, ast.Attribute)
              and isinstance(base.value, ast.Name)
              and base.value.id == "self"):
            write = Write(f"self.{base.attr}", lineno, self._guarded(),
                          detail)
            if not write.guarded:
                self.eff.unguarded_self_writes.append(write)

    # .. calls ............................................................
    def _on_call(self, node: ast.Call) -> None:
        verdict = classify_nondet(node, self.nondet_imports)
        if verdict is not None and verdict.kind not in self.eff.nondet:
            self.eff.nondet[verdict.kind] = (verdict.description, node.lineno)
        targets = self._resolve(node)
        func = node.func
        if isinstance(func, ast.Name):
            # a name in call position is a callee, not a data dependency;
            # keep it out of the closure-read set the KEY rules consume.
            self._call_func_names.add(id(func))
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                base = func.value.id
                if base == "self" and targets:
                    self.eff.self_calls.update(targets)
                self._classify_method_call(base, func, node, targets)
            elif func.attr in _MUTATORS and not targets:
                self._chained_mutator(func, node)
        if isinstance(func, ast.Attribute) and func.attr == "get_or_build":
            self.eff.key_sites.append(self._digest_key_site(node))
        self._record_forwards(node, targets)

    def _resolve(self, node: ast.Call) -> tuple[str, ...]:
        return self.graph.resolve_call(self.mnode, self.fnode, self.nested,
                                       node)

    def _classify_method_call(self, base: str, func: ast.Attribute,
                              node: ast.Call,
                              targets: tuple[str, ...]) -> None:
        qual = self._global_qual(base)
        if qual is None:
            if func.attr in _MUTATORS and base in self.local_bound:
                self.eff.local_mutations.append(Mutation(
                    base, node.lineno, f"{base}.{func.attr}(...)"))
                if base in self.eff.params:
                    self.eff.param_mut.add(base)
            return
        if targets:
            self.eff.instance_calls.append(InstanceCall(
                qual, func.attr, node.lineno, targets))
        elif func.attr in _MUTATORS:
            self.eff.mutations.append(Write(
                qual, node.lineno, self._guarded(),
                f"{base}.{func.attr}(...)"))
        else:
            self.eff.reads.add(qual)

    def _chained_mutator(self, func: ast.Attribute, node: ast.Call) -> None:
        """``self.x.append(...)`` / ``GLOBAL.x.append(...)``: the mutation
        lands on whatever the chain's root refers to."""
        chain = astutil.dotted_chain(func)
        if not chain:
            return
        root = chain[0]
        dotted = ".".join(chain)
        if root == "self":
            write = Write(f"self.{chain[1]}", node.lineno, self._guarded(),
                          f"{dotted}(...)")
            if not write.guarded:
                self.eff.unguarded_self_writes.append(write)
            return
        qual = self._global_qual(root)
        if qual is not None:
            self.eff.mutations.append(Write(
                qual, node.lineno, self._guarded(), f"{dotted}(...)"))
        elif root in self.local_bound:
            self.eff.local_mutations.append(Mutation(
                root, node.lineno, f"{dotted}(...)"))
            if root in self.eff.params:
                self.eff.param_mut.add(root)

    def _record_forwards(self, node: ast.Call,
                         targets: tuple[str, ...]) -> None:
        if not targets:
            return
        callee_params = self._callee_params(targets, node)
        if callee_params is None:
            return
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Name) and arg.id in self.eff.params \
                    and index < len(callee_params):
                self.eff.forwards.append(
                    (targets, arg.id, callee_params[index]))
        for kw in node.keywords:
            if kw.arg and isinstance(kw.value, ast.Name) \
                    and kw.value.id in self.eff.params:
                self.eff.forwards.append((targets, kw.value.id, kw.arg))

    def _callee_params(self, targets: tuple[str, ...],
                       node: ast.Call) -> list[str] | None:
        if len(targets) != 1:
            return None
        callee = self.graph.functions.get(targets[0])
        if callee is None:
            return None
        params = [a.arg for a in callee.node.args.args]
        if callee.cls is not None and isinstance(node.func, ast.Attribute) \
                and params and params[0] in ("self", "cls"):
            params = params[1:]
        return params

    # .. returns / origins (ALIAS) ........................................
    def _on_return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._classify_return(node.value)

    def _classify_return(self, value: ast.expr) -> None:
        if isinstance(value, ast.Tuple):
            for element in value.elts:
                self._classify_return(element)
            return
        if isinstance(value, ast.Call):
            if isinstance(value.func, ast.Attribute) \
                    and _is_cache_primitive(value.func):
                self.eff.returns_cached = True
            else:
                targets = self._resolve(value)
                if targets:
                    self.eff.return_calls.update(targets)
            return
        if isinstance(value, ast.Name):
            for origin in self.eff.origins.get(value.id, ()):
                if origin.kind == "cache-primitive":
                    self.eff.returns_cached = True
                elif origin.kind == "call":
                    self.eff.return_calls.update(origin.targets)

    def _record_origin(self, targets: list[ast.expr],
                       value: ast.expr) -> None:
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                names.extend(e.id for e in target.elts
                             if isinstance(e, ast.Name))
        if not names:
            return
        origin = self._origin_of(value)
        for name in names:
            self.eff.origins.setdefault(name, []).append(origin)

    def _origin_of(self, value: ast.expr) -> Origin:
        if isinstance(value, ast.Call):
            if isinstance(value.func, ast.Attribute) \
                    and _is_cache_primitive(value.func):
                chain = astutil.dotted_chain(value.func)
                return Origin("cache-primitive", value.lineno,
                              detail=".".join(chain) or value.func.attr)
            if _is_clone_expr(value):
                return Origin("clone", value.lineno)
            targets = self._resolve(value)
            if targets:
                name = astutil.call_name(value) or "?"
                return Origin("call", value.lineno, targets=targets,
                              detail=f"{name}()")
        if isinstance(value, ast.Await):
            return self._origin_of(value.value)
        return Origin("other", value.lineno)

    # .. key-site digestion (KEY rules) ...................................
    def _digest_key_site(self, node: ast.Call) -> KeySite:
        chain = astutil.dotted_chain(node.func)
        receiver = ".".join(chain[:-1]) or "<cache>"
        key_expr = node.args[0] if node.args else None
        builder = node.args[1] if len(node.args) > 1 else None
        key_names: set[str] = set()
        key_self: set[str] = set()
        key_name_is: str | None = None
        if key_expr is not None:
            if isinstance(key_expr, ast.Name):
                key_name_is = key_expr.id
            self._collect_key_names(key_expr, key_names, key_self)
        site = KeySite(lineno=node.lineno, receiver=receiver,
                       key_names=key_names, key_self_attrs=key_self,
                       key_name_is=key_name_is,
                       builder_desc="<missing>", builder_fids=())
        if builder is None:
            site.unresolved = True
            return site
        if isinstance(builder, ast.Lambda):
            site.builder_desc = "lambda"
            self._digest_lambda(builder, site)
        elif isinstance(builder, ast.Name):
            site.builder_desc = f"{builder.id}()"
            fids = self.graph.resolve_reference(self.mnode, self.fnode,
                                                self.nested, builder)
            site.builder_fids = fids
            site.unresolved = not fids
        elif isinstance(builder, ast.Attribute):
            site.builder_desc = ".".join(astutil.dotted_chain(builder)) \
                or builder.attr
            fids = self.graph.resolve_reference(self.mnode, self.fnode,
                                                self.nested, builder)
            site.builder_fids = fids
            site.unresolved = not fids
        else:
            site.builder_desc = "<expression>"
            site.unresolved = True
        return site

    def _collect_key_names(self, expr: ast.expr, names: set[str],
                           self_attrs: set[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                names.add(node.id)
            elif isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                self_attrs.add(node.attr)
        # drop names that are the functions being called, not values
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                chain = astutil.dotted_chain(node.func)
                if chain:
                    names.discard(chain[0])
        names.discard("self")

    def _digest_lambda(self, node: ast.Lambda, site: KeySite) -> None:
        params = {a.arg for a in node.args.args + node.args.kwonlyargs}
        site.lambda_params = params
        call_fids: list[str] = []
        func_names = {id(sub.func) for sub in ast.walk(node.body)
                      if isinstance(sub, ast.Call)
                      and isinstance(sub.func, ast.Name)}
        for sub in ast.walk(node.body):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id in params or id(sub) in func_names \
                        or hasattr(builtins, sub.id):
                    continue
                qual = self._global_qual(sub.id)
                if qual is not None:
                    site.lambda_global_reads.add(qual)
                elif sub.id in self.scope_names or sub.id in self.nested:
                    continue  # module functions/classes; call edge below
                elif sub.id in self.local_bound or sub.id in self.eff.params:
                    site.lambda_free_reads.add(sub.id)
            elif isinstance(sub, ast.Call):
                call_fids.extend(self.graph.resolve_call(
                    self.mnode, self.fnode, self.nested, sub))
        site.lambda_call_fids = tuple(call_fids)


# -- the pass --------------------------------------------------------------
class EffectsAnalysis:
    """Package-wide analysis: summaries, fixpoint, and rule evaluation."""

    def __init__(self, modules: list[SourceModule],
                 roots: tuple[str, ...] = PARALLEL_ROOTS):
        self.modules = modules
        self.graph = callgraph.build(modules)
        self.effects: dict[str, FunctionEffects] = {}
        self._summarize()
        self._fixpoint()
        self.roots = tuple(fid for root in roots
                           for fid in self.graph.find(root))
        self.reachable = self.graph.reachable(list(self.roots))
        self.mutated_globals = self._mutated_globals()

    # .. summaries ........................................................
    def _summarize(self) -> None:
        for mnode in self.graph.by_module.values():
            module_globals = _module_globals(mnode.module)
            scope_names = _module_scope_names(mnode)
            imports = NondetImports().collect(mnode.module.tree)
            for fnode in mnode.functions.values():
                analyzer = _FunctionAnalyzer(self.graph, mnode, fnode,
                                             module_globals, scope_names,
                                             imports)
                self.effects[fnode.fid] = analyzer.analyze()

    def _fixpoint(self) -> None:
        for eff in self.effects.values():
            eff.trans_reads = set(eff.reads)
            eff.trans_nondet = {kind: (eff.fid, desc)
                                for kind, (desc, _) in eff.nondet.items()}
            eff.trans_self_mut = bool(eff.unguarded_self_writes)
        changed = True
        while changed:
            changed = False
            for fid, eff in self.effects.items():
                fnode = self.graph.functions[fid]
                callees = set()
                for site in fnode.calls + fnode.refs:
                    callees.update(site.targets)
                for target in callees:
                    te = self.effects.get(target)
                    if te is None:
                        continue
                    new_reads = te.trans_reads - eff.trans_reads
                    if new_reads:
                        eff.trans_reads |= new_reads
                        changed = True
                    for kind, origin in te.trans_nondet.items():
                        if kind not in eff.trans_nondet:
                            eff.trans_nondet[kind] = origin
                            changed = True
                if not eff.returns_cached and any(
                        self.effects.get(t) is not None
                        and self.effects[t].returns_cached
                        for t in eff.return_calls):
                    eff.returns_cached = True
                    changed = True
                if not eff.trans_self_mut and any(
                        self.effects.get(t) is not None
                        and self.effects[t].trans_self_mut
                        for t in eff.self_calls):
                    eff.trans_self_mut = True
                    changed = True
                for targets, caller_param, callee_param in eff.forwards:
                    if caller_param in eff.param_mut:
                        continue
                    te = self.effects.get(targets[0]) if len(targets) == 1 \
                        else None
                    if te is not None and callee_param in te.param_mut:
                        eff.param_mut.add(caller_param)
                        changed = True

    def _mutated_globals(self) -> set[str]:
        mutated: set[str] = set()
        for eff in self.effects.values():
            mutated.update(w.qual for w in eff.rebinds)
            mutated.update(w.qual for w in eff.mutations)
            for call in eff.instance_calls:
                if any(self.effects.get(t) is not None
                       and self.effects[t].trans_self_mut
                       for t in call.targets):
                    mutated.add(call.qual)
        return mutated

    # .. rule evaluation ..................................................
    def findings(self) -> list[Finding]:
        found: list[Finding] = []
        for mnode in self.graph.by_module.values():
            for fnode in mnode.functions.values():
                eff = self.effects[fnode.fid]
                emit = _Emitter(mnode.module, found)
                if fnode.fid in self.reachable:
                    self._race_rules(fnode, eff, emit)
                self._race004(mnode, fnode, eff, emit)
                self._key_rules(fnode, eff, emit)
                self._alias_rules(fnode, eff, emit)
        unique = {(f.rule, f.location, f.message): f for f in found}
        return sorted(unique.values(), key=_finding_order)

    def _race_rules(self, fnode: FunctionNode, eff: FunctionEffects,
                    emit: "_Emitter") -> None:
        for write in eff.rebinds:
            if not write.guarded:
                emit("RACE001", write.lineno,
                     f"{fnode.qualname} rebinds module global "
                     f"{write.qual.rsplit(':', 1)[1]} outside a lock on a "
                     f"parallel path ({write.detail})")
        for write in eff.mutations:
            if not write.guarded:
                emit("RACE002", write.lineno,
                     f"{fnode.qualname} mutates module-level state "
                     f"{write.qual} outside a lock on a parallel path "
                     f"({write.detail})")
        for call in eff.instance_calls:
            if any(self.effects.get(t) is not None
                   and self.effects[t].trans_self_mut
                   for t in call.targets):
                emit("RACE002", call.lineno,
                     f"{fnode.qualname} calls {call.method}() on module-level "
                     f"instance {call.qual}; the method writes self outside "
                     f"a lock")
        for name, lineno in eff.mutable_defaults:
            emit("RACE003", lineno,
                 f"{fnode.qualname} has mutable default argument {name}= "
                 f"shared across every parallel invocation")

    def _race004(self, mnode: ModuleNode, fnode: FunctionNode,
                 eff: FunctionEffects, emit: "_Emitter") -> None:
        # Unlike RACE001–003, this is not gated on parallel-root
        # reachability: the pure layers are cached and replayed no matter
        # which entry point invoked them, so the boundary contract is
        # layer-wide.
        if mnode.module.layer not in PURE_LAYERS:
            return
        for site in fnode.calls + fnode.refs:
            if len(site.targets) != 1:
                continue
            target = site.targets[0]
            te = self.effects.get(target)
            tn = self.graph.functions.get(target)
            if te is None or tn is None:
                continue
            if tn.module.layer in PURE_LAYERS:
                continue  # boundary sits deeper; report it there
            for kind in TRUE_NONDET:
                if kind in te.trans_nondet:
                    origin_fid, desc = te.trans_nondet[kind]
                    emit("RACE004", site.lineno,
                         f"{fnode.qualname} (pure layer "
                         f"'{mnode.module.layer}') calls {tn.qualname}, "
                         f"which transitively reaches {desc} in "
                         f"{origin_fid}")
                    break

    def _key_rules(self, fnode: FunctionNode, eff: FunctionEffects,
                   emit: "_Emitter") -> None:
        for site in eff.key_sites:
            if site.unresolved and site.builder_desc == "<expression>":
                continue  # cannot say anything honest about opaque builders
            reads, free, params, self_reads = self._builder_reads(eff, site)
            value_names = set(site.key_names) | site.key_self_attrs
            covered = set(value_names)
            if site.key_name_is is not None:
                covered.add(site.key_name_is)
                value_names.discard(site.key_name_is)
                traced_names, traced_self = self._trace_key_assignment(
                    fnode, site.key_name_is)
                covered |= traced_names | traced_self
                value_names |= traced_names | traced_self
            # KEY001 — mutable globals read but not keyed
            leaked = sorted((reads & self.mutated_globals)
                            - {f"{fnode.module.display}:{name}"
                               for name in covered})
            for qual in leaked:
                emit("KEY001", site.lineno,
                     f"builder {site.builder_desc} for {site.receiver} "
                     f"reads mutable global {qual} which the cache key "
                     f"does not encode")
            # KEY002 — closure reads not keyed
            unkeyed = sorted((free | self_reads) - covered - params)
            if unkeyed:
                emit("KEY002", site.lineno,
                     f"builder {site.builder_desc} for {site.receiver} "
                     f"closes over {', '.join(unkeyed)} which the cache "
                     f"key does not encode (under-keyed)")
            # KEY003 — keyed values never read
            consumed = free | self_reads | params \
                | {q.rsplit(":", 1)[1] for q in reads}
            unread = sorted(value_names - consumed)
            if unread and not site.unresolved:
                emit("KEY003", site.lineno,
                     f"cache key for {site.receiver} encodes "
                     f"{', '.join(unread)} which builder "
                     f"{site.builder_desc} never reads (over-keyed)")

    def _builder_reads(self, eff: FunctionEffects, site: KeySite
                       ) -> tuple[set[str], set[str], set[str], set[str]]:
        """(transitive global reads, free reads, params, self reads)."""
        if site.builder_desc == "lambda":
            reads = set(site.lambda_global_reads)
            for fid in site.lambda_call_fids:
                te = self.effects.get(fid)
                if te is not None:
                    reads |= te.trans_reads
            return reads, set(site.lambda_free_reads), \
                set(site.lambda_params), set()
        reads: set[str] = set()
        free: set[str] = set()
        params: set[str] = set()
        self_reads: set[str] = set()
        for fid in site.builder_fids:
            te = self.effects.get(fid)
            if te is None:
                continue
            reads |= te.trans_reads
            free |= te.free_reads
            params |= set(te.params) - {"self", "cls"}
            self_reads |= te.self_reads
        return reads, free, params, self_reads

    def _trace_key_assignment(self, fnode: FunctionNode, key_name: str
                              ) -> tuple[set[str], set[str]]:
        """Value names and self-attrs feeding ``key = <expr>`` one level up,
        so a pre-computed key still covers the values it was derived from."""
        names: set[str] = set()
        self_attrs: set[str] = set()
        for node in ast.walk(fnode.node):
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == key_name
                    for t in node.targets):
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) \
                            and isinstance(sub.ctx, ast.Load):
                        names.add(sub.id)
                    elif isinstance(sub, ast.Attribute) \
                            and isinstance(sub.value, ast.Name) \
                            and sub.value.id == "self":
                        self_attrs.add(sub.attr)
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Call):
                        chain = astutil.dotted_chain(sub.func)
                        if chain:
                            names.discard(chain[0])
        names.discard("self")
        return names, self_attrs

    def _alias_rules(self, fnode: FunctionNode, eff: FunctionEffects,
                     emit: "_Emitter") -> None:
        for mutation in eff.local_mutations:
            origin = self._latest_origin(eff, mutation)
            if origin is None:
                continue
            if origin.kind == "cache-primitive":
                emit("ALIAS001", mutation.lineno,
                     f"{fnode.qualname} mutates {mutation.name} "
                     f"({mutation.detail}) obtained from "
                     f"{origin.detail}() without an intervening clone(); "
                     f"the cached copy is shared")
            elif origin.kind == "call" and origin.targets and all(
                    self.effects.get(t) is not None
                    and self.effects[t].returns_cached
                    for t in origin.targets):
                emit("ALIAS002", mutation.lineno,
                     f"{fnode.qualname} mutates {mutation.name} "
                     f"({mutation.detail}) returned by reference from "
                     f"caching function {origin.detail}; clone() before "
                     f"mutating")
        self._alias_escapes(fnode, eff, emit)

    def _latest_origin(self, eff: FunctionEffects,
                       mutation: Mutation) -> Origin | None:
        candidates = [o for o in eff.origins.get(mutation.name, ())
                      if o.lineno <= mutation.lineno]
        if not candidates:
            return None
        return max(candidates, key=lambda o: o.lineno)

    def _alias_escapes(self, fnode: FunctionNode, eff: FunctionEffects,
                       emit: "_Emitter") -> None:
        """Cached objects passed to callees that mutate that parameter."""
        for site in fnode.calls:
            if len(site.targets) != 1 or not isinstance(site.node, ast.Call):
                continue
            te = self.effects.get(site.targets[0])
            tn = self.graph.functions.get(site.targets[0])
            if te is None or tn is None or not te.param_mut:
                continue
            params = [a.arg for a in tn.node.args.args]
            if tn.cls is not None and params and params[0] in ("self", "cls") \
                    and isinstance(site.node.func, ast.Attribute):
                params = params[1:]
            for index, arg in enumerate(site.node.args):
                if not isinstance(arg, ast.Name) or index >= len(params):
                    continue
                if params[index] not in te.param_mut:
                    continue
                origin = self._latest_origin(
                    eff, Mutation(arg.id, site.lineno, ""))
                if origin is None:
                    continue
                if origin.kind == "cache-primitive":
                    emit("ALIAS001", site.lineno,
                         f"{fnode.qualname} passes cached object {arg.id} "
                         f"to {tn.qualname}, which mutates that parameter; "
                         f"clone() before the call")
                elif origin.kind == "call" and origin.targets and all(
                        self.effects.get(t) is not None
                        and self.effects[t].returns_cached
                        for t in origin.targets):
                    emit("ALIAS002", site.lineno,
                         f"{fnode.qualname} passes {arg.id} (returned by "
                         f"reference from caching function {origin.detail}) "
                         f"to {tn.qualname}, which mutates that parameter; "
                         f"clone() before the call")


def _finding_order(finding: Finding) -> tuple[str, int, str]:
    path, _, line = finding.location.rpartition(":")
    return (path, int(line) if line.isdigit() else 0, finding.rule)


class _Emitter:
    """Finding sink bound to one module's display path and suppressions."""

    def __init__(self, module: SourceModule, sink: list[Finding]):
        self.module = module
        self.sink = sink

    def __call__(self, rule: str, lineno: int, message: str) -> None:
        if self.module.suppressions.allows(rule, lineno):
            return
        self.sink.append(Finding(
            rule, RULES[rule][0], f"{self.module.display}:{lineno}", message))


# -- entry points ----------------------------------------------------------
def check_modules(modules: list[SourceModule],
                  roots: tuple[str, ...] = PARALLEL_ROOTS) -> list[Finding]:
    """Analyze pre-parsed modules (test seam) and evaluate every rule."""
    return EffectsAnalysis(modules, roots=roots).findings()


def check_source(source: str, path: str,
                 roots: tuple[str, ...] = PARALLEL_ROOTS) -> list[Finding]:
    """Single-module convenience wrapper used by the seeded-defect tests."""
    return check_modules([astutil.load_source(source, path)], roots=roots)


def run(root: Path | None = None,
        modules: list[SourceModule] | None = None) -> list[Finding]:
    """Effects pass entry point: analyze every module under ``root``.

    ``modules`` shares a pre-parsed package (one parse for all source passes).
    """
    return check_modules(modules if modules is not None
                         else astutil.load_package(root))
