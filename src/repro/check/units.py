"""Dimensional-analysis pass: unit-check the quantity dataflow.

Every headline number the pipeline produces is a physical quantity —
latencies, energies per inference, power draws, byte traffic, MAC counts,
surface temperatures — and almost all of them travel between modules as
raw ``float``s.  This pass is an `ast`-based abstract interpreter that
assigns each expression a *dimension* (a :class:`~repro.core.dimension.Dim`
exponent vector) plus a *presentation scale* (so milliseconds and seconds
are distinct even though both are times), and propagates them through
assignments, calls, returns and arithmetic:

* multiplication/division combine dimensions (``power_w * latency_s`` is
  an energy; ``macs / time_s`` a throughput; ``latency_s / target_s`` a
  pure ratio);
* addition, subtraction, comparison and accumulation require *matching*
  dimensions **and** scales — ``latency_s + energy_j`` and
  ``latency_ms < deadline_s`` are reported, not silently computed.

Dimensions come from three declared sources of truth (see
:mod:`repro.check.unit_maps`): the ``Quantity`` hierarchy and its
``DIMENSIONS`` registry, the package-wide unit-suffix naming convention
(``latency_s``, ``energy_mj``, ``bandwidth_bytes_per_s``,
``r_passive_c_per_w``), and curated per-name maps.  Anything the checker
cannot prove stays *unknown* and propagates silently: the pass is
deliberately conservative, and a finding means a genuine contradiction
between two declared units.

Rules (all static; zero runtime cost to hot paths):

* **UNIT001** — addition/subtraction across dimensions or scales.
* **UNIT002** — comparison (``<``/``==``/``min``/``max``) across
  dimensions or scales.
* **UNIT003** — a return value contradicting the unit declared by the
  function's name suffix or ``Quantity`` return annotation.
* **UNIT004** — the same scale conversion applied twice
  (``value * MILLI * MILLI``).
* **UNIT005** — a ``Quantity`` constructor fed an already-converted value
  (``Seconds(latency_ms)``, ``Seconds.from_ms(x * MILLI)``).
* **UNIT006** — an accumulator mixing dimensionless and dimensioned
  increments.
* **UNIT007** — a unit-suffixed name bound to a value of a contradicting
  dimension (``energy_j = power_w``).
* **UNIT008** — a dimensioned value escaping a public function whose
  signature declares no unit (no suffix, no ``Quantity`` annotation).

Suppression uses the shared comment forms (:mod:`repro.check.suppress`):
same-line ``# repro: allow[UNIT001]`` or file-level
``# repro: allow-file[UNIT007]``.
"""

from __future__ import annotations

# repro: allow-file[ARCH003] presentation scales are exact constants (1.0,
# 1e-3, ...) compared identically by design, never measured floats.

import ast
from dataclasses import dataclass, replace
from pathlib import Path

from repro.check import astutil
from repro.check.findings import Finding, Severity
from repro.check.suppress import SuppressionIndex
from repro.check.unit_maps import (
    AMBIGUOUS_BARE_TOKENS,
    CALL_RETURNS,
    COMPOUND_SUFFIXES,
    CONVERSION_LITERALS,
    DIMENSIONLESS_NAMES,
    DIMENSIONLESS_TOKENS,
    NON_QUANTITY_NAMES,
    PRESERVING_CALLS,
    SCALE_CONSTANTS,
    UNIT_TOKENS,
)
from repro.core.dimension import DIMENSIONLESS, Dim
from repro.core.quantity import DIMENSIONS
from repro.core import quantity as _quantity

RULES: dict[str, tuple[Severity, str]] = {
    "UNIT001": (Severity.ERROR,
                "addition/subtraction across dimensions or scales"),
    "UNIT002": (Severity.ERROR, "comparison across dimensions or scales"),
    "UNIT003": (Severity.ERROR,
                "return value contradicts the declared unit"),
    "UNIT004": (Severity.ERROR, "same scale conversion applied twice"),
    "UNIT005": (Severity.ERROR,
                "Quantity constructor fed an already-converted value"),
    "UNIT006": (Severity.ERROR,
                "accumulator mixes dimensionless and dimensioned values"),
    "UNIT007": (Severity.ERROR,
                "unit-suffixed name bound to a contradicting dimension"),
    "UNIT008": (Severity.WARNING,
                "dimensioned value escapes a public API without a declared "
                "unit"),
}

#: Quantity subclass name -> dimension, derived from the declarative
#: registry so new subclasses are picked up automatically.
QUANTITY_CLASS_DIMS: dict[str, Dim] = {
    name: DIMENSIONS[obj.unit]
    for name, obj in vars(_quantity).items()
    if isinstance(obj, type) and getattr(obj, "unit", None) in DIMENSIONS
    and name != "Quantity"
}

_SI_PREFIXES = {1.0: "", 1e-3: "m", 1e-6: "u", 1e-9: "n",
                1e3: "k", 1e6: "M", 1e9: "G", 1e12: "T",
                1024.0: "Ki", 1024.0**2: "Mi", 1024.0**3: "Gi"}


@dataclass(frozen=True)
class AbsVal:
    """Abstract value: what the checker knows about one expression.

    ``dim is None`` means the dimension is unknown (propagates silently);
    ``scale is None`` means the dimension is known but the presentation
    scale is not (e.g. after scaling by a bare literal).  ``literal``
    marks pure numeric literals, which are polymorphic scalars: they
    multiply anything and add to nothing in particular.  ``convs``
    records the named scale conversions applied so far (for UNIT004/005),
    and ``tagged`` marks values built by a ``Quantity`` constructor
    (already self-describing, so UNIT008 does not fire on them).
    """

    dim: Dim | None = None
    scale: float | None = None
    literal: bool = False
    convs: frozenset[str] = frozenset()
    tagged: bool = False

    @property
    def known(self) -> bool:
        return self.dim is not None


UNKNOWN = AbsVal()
LITERAL = AbsVal(literal=True)


def unit_label(dim: Dim, scale: float | None) -> str:
    """Readable unit for messages: (TIME, 1e-3) -> "ms"."""
    symbol = str(dim)
    if scale is None or scale == 1.0:
        return symbol
    prefix = _SI_PREFIXES.get(scale)
    if prefix is not None and symbol in ("s", "J", "W", "Hz", "B", "MAC"):
        return f"{prefix}{symbol}"
    return f"{scale:g}*{symbol}"


def _label(value: AbsVal) -> str:
    return unit_label(value.dim, value.scale) if value.known else "?"


def parse_name_dims(name: str) -> tuple[Dim, float | None] | None:
    """Dimension and scale declared by an identifier's unit suffix.

    Implements the package naming convention: the trailing token names a
    unit (``latency_s``, ``energy_mj``), optionally divided by further
    units with ``per`` (``bandwidth_bytes_per_s``, ``r_passive_c_per_w``).
    Returns ``None`` for names that declare nothing.
    """
    lower = name.lower()
    if lower in NON_QUANTITY_NAMES or lower.strip("_") in NON_QUANTITY_NAMES:
        return None
    for compound, dims in COMPOUND_SUFFIXES.items():
        if lower == compound or lower.endswith("_" + compound):
            return dims
    tokens = [token for token in lower.split("_") if token]
    if not tokens:
        return None
    last = tokens[-1]
    if last in DIMENSIONLESS_TOKENS:
        return (DIMENSIONLESS, 1.0)
    if last not in UNIT_TOKENS:
        return None
    if len(tokens) == 1 and last in AMBIGUOUS_BARE_TOKENS:
        return None
    # collect the trailing U (_per_U)* chain, right to left
    units = [last]
    index = len(tokens) - 1
    while index - 2 >= 0 and tokens[index - 1] == "per" \
            and tokens[index - 2] in UNIT_TOKENS:
        units.insert(0, tokens[index - 2])
        index -= 2
    dim, scale = UNIT_TOKENS[units[0]]
    for denominator in units[1:]:
        den_dim, den_scale = UNIT_TOKENS[denominator]
        dim = dim / den_dim
        scale = scale / den_scale
    return (dim, scale)


def _suffix_val(name: str) -> AbsVal:
    if name in DIMENSIONLESS_NAMES:
        return AbsVal(DIMENSIONLESS, 1.0)
    parsed = parse_name_dims(name)
    if parsed is None:
        return UNKNOWN
    return AbsVal(parsed[0], parsed[1])


def _scale_const(node: ast.expr) -> tuple[str, float] | None:
    """Recognize a named scale constant (MILLI, MEBI, quantity.GIGA, ...)."""
    if isinstance(node, ast.Name) and node.id in SCALE_CONSTANTS:
        return node.id, SCALE_CONSTANTS[node.id]
    if isinstance(node, ast.Attribute) and node.attr in SCALE_CONSTANTS:
        return node.attr, SCALE_CONSTANTS[node.attr]
    return None


_CONTAINER_ANNOTATIONS = ("list", "List", "tuple", "Tuple", "Sequence",
                          "Iterable", "Iterator", "Optional")


def _annotation_dims(node: ast.expr | None) -> tuple[Dim, float] | None:
    """Dimension declared by a ``Quantity``-subclass annotation, if any.

    Homogeneous containers declare the element unit: ``list[Seconds]``
    means "each element is a time in seconds".
    """
    if node is None:
        return None
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None)
        if base_name in _CONTAINER_ANNOTATIONS:
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_dims(inner)
        return None
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.strip().split(".")[-1]
    if name in QUANTITY_CLASS_DIMS:
        return (QUANTITY_CLASS_DIMS[name], 1.0)
    return None


def _merge(a: AbsVal, b: AbsVal) -> AbsVal:
    """Join two branch values: keep only what both agree on."""
    if a == b:
        return a
    if a.known and b.known and a.dim == b.dim:
        scale = a.scale if a.scale == b.scale else None
        return AbsVal(a.dim, scale)
    return UNKNOWN


@dataclass
class _FuncCtx:
    """Expectation for the function currently being analyzed."""

    name: str
    expected: tuple[Dim, float | None] | None
    public: bool
    lineno: int = 0


class _Analyzer:
    """One module's abstract interpretation, producing findings."""

    def __init__(self, display: str, suppressions: SuppressionIndex):
        self.display = display
        self.suppressions = suppressions
        self.findings: list[Finding] = []

    # -- reporting -------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if self.suppressions.allows(rule, lineno):
            return
        self.findings.append(Finding(
            rule, RULES[rule][0], f"{self.display}:{lineno}", message))

    # -- entry point -----------------------------------------------------
    def check_module(self, tree: ast.Module) -> None:
        env: dict[str, AbsVal] = {}
        self.exec_block(tree.body, env, ctx=None)

    # -- statements ------------------------------------------------------
    def exec_block(self, stmts: list[ast.stmt], env: dict[str, AbsVal],
                   ctx: _FuncCtx | None) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env, ctx)

    def exec_stmt(self, stmt: ast.stmt, env: dict[str, AbsVal],
                  ctx: _FuncCtx | None) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.check_function(stmt, env)
        elif isinstance(stmt, ast.ClassDef):
            class_env = dict(env)
            self.exec_block(stmt.body, class_env, ctx=None)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.bind(target, value, env, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            declared = _annotation_dims(stmt.annotation)
            value = self.eval(stmt.value, env) if stmt.value else UNKNOWN
            if declared is not None and not value.known:
                value = AbsVal(declared[0], declared[1])
            self.bind(stmt.target, value, env, stmt, declared=declared)
        elif isinstance(stmt, ast.AugAssign):
            self.exec_augassign(stmt, env)
        elif isinstance(stmt, ast.Return):
            self.exec_return(stmt, env, ctx)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            branch_a, branch_b = dict(env), dict(env)
            self.exec_block(stmt.body, branch_a, ctx)
            self.exec_block(stmt.orelse, branch_b, ctx)
            self.merge_envs(env, branch_a, branch_b)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter, env)
            self.bind_unknown(stmt.target, env)
            body_env = dict(env)
            self.exec_block(stmt.body, body_env, ctx)
            self.exec_block(stmt.orelse, body_env, ctx)
            self.merge_envs(env, env, body_env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            body_env = dict(env)
            self.exec_block(stmt.body, body_env, ctx)
            self.exec_block(stmt.orelse, body_env, ctx)
            self.merge_envs(env, env, body_env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self.bind_unknown(item.optional_vars, env)
            self.exec_block(stmt.body, env, ctx)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body, env, ctx)
            for handler in stmt.handlers:
                if handler.name:
                    env[handler.name] = UNKNOWN
                self.exec_block(handler.body, env, ctx)
            self.exec_block(stmt.orelse, env, ctx)
            self.exec_block(stmt.finalbody, env, ctx)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
            if stmt.msg is not None:
                self.eval(stmt.msg, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # imports, pass, break, continue, global, nonlocal: nothing to do

    def merge_envs(self, env: dict[str, AbsVal], branch_a: dict[str, AbsVal],
                   branch_b: dict[str, AbsVal]) -> None:
        for name in set(branch_a) | set(branch_b):
            left = branch_a.get(name, UNKNOWN)
            right = branch_b.get(name, UNKNOWN)
            env[name] = _merge(left, right)

    def bind_unknown(self, target: ast.expr, env: dict[str, AbsVal]) -> None:
        """Bind a target with no evaluable source (loop/with targets).

        The name's own suffix still declares its unit: ``for latency_ms in
        samples`` introduces a millisecond value.
        """
        if isinstance(target, ast.Name):
            env[target.id] = _suffix_val(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.bind_unknown(element, env)
        elif isinstance(target, ast.Starred):
            self.bind_unknown(target.value, env)

    def bind(self, target: ast.expr, value: AbsVal, env: dict[str, AbsVal],
             stmt: ast.stmt,
             declared: tuple[Dim, float] | None = None) -> None:
        """Bind one assignment target, checking its suffix contract."""
        if isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, (ast.Tuple, ast.List)) \
                    and len(stmt.value.elts) == len(target.elts):
                for element, sub in zip(target.elts, stmt.value.elts):
                    self.bind(element, self.eval(sub, env), env, stmt)
            else:
                for element in target.elts:
                    self.bind_unknown(element, env)
            return
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Starred):
            self.bind_unknown(target.value, env)
            return
        else:  # subscripts etc.
            return
        suffix = _suffix_val(name)
        expected = declared if declared is not None else (
            (suffix.dim, suffix.scale) if suffix.known else None)
        conflict = False
        if expected is not None and value.known:
            exp_dim, exp_scale = expected
            if value.dim != exp_dim or (
                    exp_scale is not None and value.scale is not None
                    and value.scale != exp_scale):
                conflict = True
                self._emit("UNIT007", stmt,
                           f"'{name}' declares {unit_label(exp_dim, exp_scale)} "
                           f"but is bound to a {_label(value)} value")
        if isinstance(target, ast.Name):
            if value.known and not conflict:
                env[name] = value
            elif expected is not None:
                # after a contradiction, recover to the name's declared
                # unit so one defect yields one finding, not a cascade
                env[name] = AbsVal(expected[0], expected[1])
            else:
                env[name] = value

    def exec_augassign(self, stmt: ast.AugAssign, env: dict[str, AbsVal]) -> None:
        operand = self.eval(stmt.value, env)
        target_name = None
        if isinstance(stmt.target, ast.Name):
            target_name = stmt.target.id
            current = env.get(target_name) or _suffix_val(target_name)
        elif isinstance(stmt.target, ast.Attribute):
            current = _suffix_val(stmt.target.attr)
        else:
            current = UNKNOWN
        if isinstance(stmt.op, (ast.Add, ast.Sub)):
            if current.known and operand.known:
                if current.dim != operand.dim:
                    rule = "UNIT006" if (current.dim.is_dimensionless
                                         or operand.dim.is_dimensionless) \
                        else "UNIT001"
                    self._emit(rule, stmt,
                               f"accumulator of {_label(current)} updated "
                               f"with a {_label(operand)} value")
                elif current.scale is not None and operand.scale is not None \
                        and current.scale != operand.scale:
                    self._emit("UNIT001", stmt,
                               f"accumulator of {_label(current)} updated "
                               f"with a {_label(operand)} value")
            result = current if current.known else operand
        elif isinstance(stmt.op, ast.Mult):
            result = self._mult(current, operand)
        elif isinstance(stmt.op, (ast.Div, ast.FloorDiv)):
            result = self._div(current, operand)
        else:
            result = UNKNOWN
        if target_name is not None:
            env[target_name] = result

    def exec_return(self, stmt: ast.Return, env: dict[str, AbsVal],
                    ctx: _FuncCtx | None) -> None:
        if stmt.value is None or ctx is None:
            return
        value = self.eval(stmt.value, env)
        if not value.known:
            return
        if ctx.expected is not None:
            exp_dim, exp_scale = ctx.expected
            if value.dim != exp_dim:
                self._emit("UNIT003", stmt,
                           f"'{ctx.name}' declares "
                           f"{unit_label(exp_dim, exp_scale)} but returns a "
                           f"{_label(value)} value")
            elif exp_scale is not None and value.scale is not None \
                    and value.scale != exp_scale:
                self._emit("UNIT003", stmt,
                           f"'{ctx.name}' declares "
                           f"{unit_label(exp_dim, exp_scale)} but returns a "
                           f"{_label(value)} value")
        elif ctx.public and not value.dim.is_dimensionless and not value.tagged:
            self._emit("UNIT008", stmt,
                       f"public '{ctx.name}' returns a {_label(value)} value "
                       "but declares no unit (add a unit suffix or a "
                       "Quantity return annotation)")

    # -- functions -------------------------------------------------------
    def check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                       outer_env: dict[str, AbsVal]) -> None:
        env = dict(outer_env)
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            declared = _annotation_dims(arg.annotation)
            suffix = _suffix_val(arg.arg)
            if declared is not None and suffix.known \
                    and suffix.dim != declared[0]:
                self._emit("UNIT007", arg,
                           f"parameter '{arg.arg}' declares "
                           f"{unit_label(*declared)} by annotation but "
                           f"{_label(suffix)} by suffix")
            if suffix.known:
                env[arg.arg] = suffix
            elif declared is not None:
                env[arg.arg] = AbsVal(declared[0], declared[1])
            else:
                env[arg.arg] = UNKNOWN
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None:
                env[vararg.arg] = UNKNOWN
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None:
                self.eval(default, outer_env)
        annotation = _annotation_dims(node.returns)
        suffix_expect = parse_name_dims(node.name)
        if suffix_expect is not None and suffix_expect[0].is_dimensionless \
                and annotation is not None:
            # a dimensionless name token ("runs", "count") is a weaker
            # declaration than an explicit Quantity annotation
            suffix_expect = None
        if annotation is not None and suffix_expect is not None \
                and suffix_expect[0] != annotation[0]:
            self._emit("UNIT007", node,
                       f"'{node.name}' declares {unit_label(*annotation)} by "
                       f"annotation but {unit_label(*suffix_expect)} by suffix")
        expected = suffix_expect if suffix_expect is not None else annotation
        ctx = _FuncCtx(
            name=node.name,
            expected=expected,
            public=not node.name.startswith("_"),
            lineno=node.lineno,
        )
        self.exec_block(node.body, env, ctx)

    # -- expressions -----------------------------------------------------
    def eval(self, node: ast.expr, env: dict[str, AbsVal]) -> AbsVal:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                    node.value, (int, float)):
                return UNKNOWN
            return LITERAL
        if isinstance(node, ast.Name):
            const = _scale_const(node)
            if const is not None:
                return LITERAL
            if node.id in env:
                return env[node.id]
            return _suffix_val(node.id)
        if isinstance(node, ast.Attribute):
            self.eval(node.value, env)
            if _scale_const(node) is not None:
                return LITERAL
            return _suffix_val(node.attr)
        if isinstance(node, ast.BinOp):
            return self.eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            value = self.eval(node.operand, env)
            return value if isinstance(node.op, (ast.USub, ast.UAdd)) else UNKNOWN
        if isinstance(node, ast.Compare):
            return self.eval_compare(node, env)
        if isinstance(node, ast.Call):
            return self.eval_call(node, env)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return _merge(self.eval(node.body, env),
                          self.eval(node.orelse, env))
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.eval(value, env)
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env)
            self.bind(node.target, value, env, node)  # type: ignore[arg-type]
            return value
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            elements = [self.eval(element, env) for element in node.elts]
            known = [e for e in elements if e.known]
            if known and len(known) == len(elements) \
                    and all(e.dim == known[0].dim for e in known):
                scale = known[0].scale if all(
                    e.scale == known[0].scale for e in known) else None
                return AbsVal(known[0].dim, scale)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.eval(key, env)
            for value in node.values:
                self.eval(value, env)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            child = dict(env)
            for generator in node.generators:
                self.eval(generator.iter, child)
                self.bind_unknown(generator.target, child)
                for condition in generator.ifs:
                    self.eval(condition, child)
            element = self.eval(node.elt, child)
            return AbsVal(element.dim, element.scale) if element.known else UNKNOWN
        if isinstance(node, ast.DictComp):
            child = dict(env)
            for generator in node.generators:
                self.eval(generator.iter, child)
                self.bind_unknown(generator.target, child)
            self.eval(node.key, child)
            self.eval(node.value, child)
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            self.eval(node.value, env)
            if isinstance(node.slice, ast.Constant) \
                    and isinstance(node.slice.value, str):
                return _suffix_val(node.slice.value)
            if not isinstance(node.slice, ast.Slice):
                self.eval(node.slice, env)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            child = dict(env)
            for arg in (*node.args.posonlyargs, *node.args.args,
                        *node.args.kwonlyargs):
                child[arg.arg] = UNKNOWN
            self.eval(node.body, child)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            self.eval(node.value, env)
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.eval(value.value, env)
            return UNKNOWN
        if isinstance(node, ast.Await):
            return self.eval(node.value, env)
        return UNKNOWN

    # -- arithmetic ------------------------------------------------------
    def _convert(self, value: AbsVal, tag: str, factor: float,
                 node: ast.AST) -> AbsVal:
        if tag in value.convs:
            self._emit("UNIT004", node,
                       f"scale conversion {tag} applied twice to one value")
        if tag.startswith("*"):
            scale = None if value.scale is None else value.scale / factor
        else:
            scale = None if value.scale is None else value.scale * factor
        return replace(value, scale=scale, convs=value.convs | {tag})

    def _mult(self, left: AbsVal, right: AbsVal) -> AbsVal:
        if left.literal and right.literal:
            return LITERAL
        if left.literal or right.literal:
            known = right if left.literal else left
            if not known.known:
                return UNKNOWN
            return AbsVal(known.dim, known.scale)
        if left.known and right.known:
            scale = (left.scale * right.scale
                     if left.scale is not None and right.scale is not None
                     else None)
            return AbsVal(left.dim * right.dim, scale)
        return UNKNOWN

    def _div(self, left: AbsVal, right: AbsVal) -> AbsVal:
        if left.literal and right.literal:
            return LITERAL
        if right.literal:
            return AbsVal(left.dim, left.scale) if left.known else UNKNOWN
        if left.literal:
            if not right.known:
                return UNKNOWN
            return AbsVal(DIMENSIONLESS / right.dim, None)
        if left.known and right.known:
            scale = (left.scale / right.scale
                     if left.scale is not None and right.scale is not None
                     else None)
            return AbsVal(left.dim / right.dim, scale)
        return UNKNOWN

    def eval_binop(self, node: ast.BinOp, env: dict[str, AbsVal]) -> AbsVal:
        # unit conversions by named scale constant are tracked exactly
        if isinstance(node.op, ast.Mult):
            const = _scale_const(node.right)
            if const is not None and _scale_const(node.left) is None:
                return self._convert(self.eval(node.left, env),
                                     f"*{const[0]}", const[1], node)
            const = _scale_const(node.left)
            if const is not None:
                return self._convert(self.eval(node.right, env),
                                     f"*{const[0]}", const[1], node)
        if isinstance(node.op, ast.Div):
            const = _scale_const(node.right)
            if const is not None:
                return self._convert(self.eval(node.left, env),
                                     f"/{const[0]}", const[1], node)
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left.known and right.known:
                if left.dim != right.dim:
                    self._emit("UNIT001", node,
                               f"cannot {'add' if isinstance(node.op, ast.Add) else 'subtract'} "
                               f"{_label(left)} and {_label(right)}")
                    return UNKNOWN
                if left.scale is not None and right.scale is not None \
                        and left.scale != right.scale:
                    self._emit("UNIT001", node,
                               f"mixed scales: {_label(left)} and "
                               f"{_label(right)} in one sum")
                    return AbsVal(left.dim, None)
                scale = left.scale if left.scale is not None else right.scale
                return AbsVal(left.dim, scale)
            if left.known or right.known:
                known = left if left.known else right
                return AbsVal(known.dim, known.scale)
            if left.literal and right.literal:
                return LITERAL
            return UNKNOWN
        if isinstance(node.op, ast.Mult):
            value = self._mult(left, right)
            if value.literal:
                return value
            # scaling by a bare conversion-looking literal blurs the scale
            for operand, abstract in ((node.left, left), (node.right, right)):
                if abstract.literal and isinstance(operand, ast.Constant) \
                        and float(operand.value) in CONVERSION_LITERALS \
                        and value.known:
                    return AbsVal(value.dim, None)
            return value
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            value = self._div(left, right)
            if isinstance(node.right, ast.Constant) and right.literal \
                    and value.known and not value.literal \
                    and float(node.right.value) in CONVERSION_LITERALS:
                return AbsVal(value.dim, None)
            return value
        if isinstance(node.op, ast.Mod):
            return AbsVal(left.dim, left.scale) if left.known else UNKNOWN
        if isinstance(node.op, ast.Pow):
            if isinstance(node.right, ast.Constant) \
                    and isinstance(node.right.value, int) and left.known:
                exponent = node.right.value
                scale = (left.scale ** exponent
                         if left.scale is not None else None)
                return AbsVal(left.dim ** exponent, scale)
            if left.literal and right.literal:
                return LITERAL
            return UNKNOWN
        return UNKNOWN

    def eval_compare(self, node: ast.Compare, env: dict[str, AbsVal]) -> AbsVal:
        operands = [self.eval(node.left, env)]
        operands += [self.eval(comparator, env)
                     for comparator in node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                   ast.Eq, ast.NotEq)):
                continue
            if left.known and right.known:
                if left.dim != right.dim:
                    self._emit("UNIT002", node,
                               f"comparison between {_label(left)} and "
                               f"{_label(right)}")
                elif left.scale is not None and right.scale is not None \
                        and left.scale != right.scale:
                    self._emit("UNIT002", node,
                               f"comparison between {_label(left)} and "
                               f"{_label(right)} (mixed scales)")
        return UNKNOWN

    # -- calls -----------------------------------------------------------
    def eval_call(self, node: ast.Call, env: dict[str, AbsVal]) -> AbsVal:
        argvals = [self.eval(argument, env) for argument in node.args]
        for keyword in node.keywords:
            value = self.eval(keyword.value, env)
            if keyword.arg is None or not value.known:
                continue
            expected = _suffix_val(keyword.arg)
            if expected.known:
                if value.dim != expected.dim:
                    self._emit("UNIT007", node,
                               f"keyword '{keyword.arg}' declares "
                               f"{_label(expected)} but receives a "
                               f"{_label(value)} value")
                elif expected.scale is not None and value.scale is not None \
                        and value.scale != expected.scale:
                    self._emit("UNIT007", node,
                               f"keyword '{keyword.arg}' declares "
                               f"{_label(expected)} but receives a "
                               f"{_label(value)} value")
        func = node.func
        # Quantity constructors: Seconds(x), Joules(x), ...
        if isinstance(func, ast.Name) and func.id in QUANTITY_CLASS_DIMS:
            dim = QUANTITY_CLASS_DIMS[func.id]
            if argvals and argvals[0].known:
                argument = argvals[0]
                if argument.dim != dim and not argument.dim.is_dimensionless:
                    self._emit("UNIT005", node,
                               f"{func.id}() constructed from a "
                               f"{_label(argument)} value")
                elif argument.dim == dim and argument.scale is not None \
                        and argument.scale != 1.0:
                    self._emit("UNIT005", node,
                               f"{func.id}() expects base SI units but got a "
                               f"{_label(argument)} value")
            return AbsVal(dim, 1.0, tagged=True)
        # scaled constructors: Seconds.from_ms(x), Hertz.from_ghz(x), ...
        if isinstance(func, ast.Attribute) and func.attr.startswith("from_") \
                and isinstance(func.value, ast.Name) \
                and func.value.id in QUANTITY_CLASS_DIMS:
            dim = QUANTITY_CLASS_DIMS[func.value.id]
            token = func.attr[len("from_"):]
            expected = UNIT_TOKENS.get(token)
            if argvals and argvals[0].known and expected is not None:
                argument = argvals[0]
                exp_dim, exp_scale = expected
                if argument.dim != exp_dim \
                        and not argument.dim.is_dimensionless:
                    self._emit("UNIT005", node,
                               f"{func.value.id}.{func.attr}() expects "
                               f"{unit_label(exp_dim, exp_scale)} but got a "
                               f"{_label(argument)} value")
                elif argument.dim == exp_dim and argument.scale is not None \
                        and argument.scale != exp_scale:
                    self._emit("UNIT005", node,
                               f"{func.value.id}.{func.attr}() expects "
                               f"{unit_label(exp_dim, exp_scale)} but got a "
                               f"{_label(argument)} value")
                elif any(tag.startswith("*") for tag in argument.convs):
                    self._emit("UNIT005", node,
                               f"{func.value.id}.{func.attr}() fed an "
                               "already-converted value (it converts "
                               "internally)")
            return AbsVal(dim, 1.0, tagged=True)
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            self.eval(func.value, env)
        if name is None:
            self.eval(func, env)
            return UNKNOWN
        if name in CALL_RETURNS:
            mapped = CALL_RETURNS[name]
            if mapped is None:
                return UNKNOWN
            return AbsVal(mapped[0], mapped[1])
        if name in PRESERVING_CALLS:
            known = [value for value in argvals if value.known]
            if name in ("min", "max", "maximum", "minimum") \
                    and len(known) >= 2:
                first = known[0]
                for other in known[1:]:
                    if other.dim != first.dim:
                        self._emit("UNIT002", node,
                                   f"{name}() across {_label(first)} and "
                                   f"{_label(other)}")
                    elif first.scale is not None and other.scale is not None \
                            and first.scale != other.scale:
                        self._emit("UNIT002", node,
                                   f"{name}() across {_label(first)} and "
                                   f"{_label(other)} (mixed scales)")
            if known:
                return AbsVal(known[0].dim, known[0].scale)
            return UNKNOWN
        suffix = _suffix_val(name)
        if suffix.known:
            return suffix
        return UNKNOWN


def check_module(module: astutil.SourceModule) -> list[Finding]:
    """Unit-check one pre-parsed module."""
    analyzer = _Analyzer(module.display, module.suppressions)
    analyzer.check_module(module.tree)
    return analyzer.findings


def check_source(source: str, path: str) -> list[Finding]:
    """Unit-check one module's source text."""
    return check_module(astutil.load_source(source, path))


def check_paths(paths: list[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for path in sorted(paths):
        findings += check_source(path.read_text(), str(path))
    return findings


#: re-exported so existing callers keep working; astutil owns discovery.
package_root = astutil.package_root


def run(root: Path | None = None,
        modules: list[astutil.SourceModule] | None = None) -> list[Finding]:
    """Units pass entry point: unit-check every module under ``root``.

    ``modules`` shares a pre-parsed package (one parse for all source passes).
    """
    if modules is None:
        modules = astutil.load_package(root)
    return [finding for module in modules for finding in check_module(module)]
