"""IR verifier: structural well-formedness of zoo graphs and transforms.

`Graph` validates the cheap invariants at construction time, but transforms
clone via ``Graph.__new__`` (skipping re-validation), annotate ops in place,
and grow richer semantics (fusion chains, sparsity, dtype rewrites) that
construction-time checks never see.  This pass re-verifies every zoo graph
and the output of every transform from first principles: dataflow order,
shape/dtype agreement across edges, non-negative accounting, fusion-link
consistency, per-op roofline preconditions, and the conservation invariants
each transform promises (fusion/quantization/freezing never change total
MACs or params; pruning annotates sparsity without touching params).

Locations read ``graph:<model>[@<transform>]/<op>``.
"""

from __future__ import annotations

import math

from repro.check.findings import Finding, Severity
from repro.graphs import ops as O
from repro.graphs.graph import Graph
from repro.graphs.tensor import DType, TensorShape
from repro.graphs.transforms import freeze_graph, fuse_graph, prune_graph, quantize_graph

RULES: dict[str, tuple[Severity, str]] = {
    "IR001": (Severity.ERROR, "dataflow must be acyclic and topologically ordered"),
    "IR002": (Severity.ERROR, "op names must be unique within a graph"),
    "IR003": (Severity.ERROR, "a graph must have at least one Input op"),
    "IR004": (Severity.ERROR, "op output shapes must be positive integer dims"),
    "IR005": (Severity.ERROR, "dtype annotations must agree across every edge"),
    "IR006": (Severity.ERROR, "FLOP/byte/param accounting must be non-negative"),
    "IR007": (Severity.ERROR, "fusion links must be consistent and acyclic"),
    "IR008": (Severity.ERROR, "roofline preconditions: finite work over positive bytes"),
    "IR101": (Severity.ERROR, "fusion must conserve total MACs, params and op count"),
    "IR102": (Severity.ERROR, "pruning must not change params or MACs (annotation only)"),
    "IR103": (Severity.ERROR, "quantization must conserve MACs/params and set uniform dtypes"),
    "IR104": (Severity.ERROR, "freezing must conserve MACs/params and fold every Dropout"),
}

#: transform name -> conservation rule id.
_CONSERVATION_RULE = {
    "fuse": "IR101",
    "prune": "IR102",
    "quantize": "IR103",
    "freeze": "IR104",
}


def _finding(rule: str, location: str, message: str) -> Finding:
    return Finding(rule, RULES[rule][0], location, message)


def _is_finite_number(value) -> bool:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return False
    try:
        return math.isfinite(float(value))
    except OverflowError:
        return False  # too large for the engine's float math


def verify_graph(graph: Graph, label: str | None = None) -> list[Finding]:
    """Re-verify one graph from first principles (IR001-IR008)."""
    label = label or graph.name
    where = f"graph:{label}"
    findings: list[Finding] = []

    in_graph = {id(op) for op in graph.ops}
    seen: set[int] = set()
    names: set[str] = set()
    for op in graph.ops:
        loc = f"{where}/{op.name}"
        for parent in op.inputs:
            if id(parent) not in in_graph:
                findings.append(_finding(
                    "IR001", loc, f"consumes {parent.name!r} which is not in the graph"))
            elif id(parent) not in seen:
                findings.append(_finding(
                    "IR001", loc, f"consumes {parent.name!r} before it is defined"))
        if op.name in names:
            findings.append(_finding("IR002", loc, "duplicate op name"))
        names.add(op.name)
        seen.add(id(op))

    if not any(isinstance(op, O.Input) for op in graph.ops):
        findings.append(_finding("IR003", where, "graph has no Input op"))

    for op in graph.ops:
        loc = f"{where}/{op.name}"
        findings += _check_shape(op, loc)
        findings += _check_dtypes(op, loc)
        findings += _check_accounting(op, loc)
        findings += _check_fusion_links(op, loc, in_graph, len(graph.ops))

    # Roofline preconditions only make sense on a structurally sound graph.
    if not findings:
        for op in graph.schedulable_ops():
            findings += _check_roofline(op, f"{where}/{op.name}")
    return findings


def _check_shape(op: O.Op, loc: str) -> list[Finding]:
    shape = op.output_shape
    if not isinstance(shape, TensorShape):
        return [_finding("IR004", loc, f"output_shape is {type(shape).__name__}, "
                                       "not a TensorShape")]
    bad = [d for d in shape.dims
           if not isinstance(d, int) or isinstance(d, bool) or d <= 0]
    if bad:
        return [_finding("IR004", loc, f"non-positive output dims in {shape.dims}")]
    return []


def _check_dtypes(op: O.Op, loc: str) -> list[Finding]:
    findings = []
    for attr in ("weight_dtype", "act_dtype"):
        if not isinstance(getattr(op, attr), DType):
            findings.append(_finding("IR005", loc, f"{attr} is not a DType"))
    if findings:
        return findings
    for parent in op.inputs:
        if isinstance(parent.act_dtype, DType) and parent.act_dtype is not op.act_dtype:
            findings.append(_finding(
                "IR005", loc,
                f"activation dtype {op.act_dtype.value} disagrees with producer "
                f"{parent.name!r} ({parent.act_dtype.value})"))
    return findings


def _check_accounting(op: O.Op, loc: str) -> list[Finding]:
    findings = []
    for attr in ("params", "macs"):
        value = getattr(op, attr)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            findings.append(_finding("IR006", loc, f"{attr} must be a non-negative int, "
                                                   f"got {value!r}"))
    sparsity = op.weight_sparsity
    if not isinstance(sparsity, (int, float)) or not 0.0 <= sparsity < 1.0:
        findings.append(_finding(
            "IR006", loc, f"weight_sparsity must be in [0, 1), got {sparsity!r}"))
    return findings


def _check_fusion_links(op: O.Op, loc: str, in_graph: set[int],
                        graph_size: int) -> list[Finding]:
    findings = []
    target = op.fused_into
    if target is not None:
        if isinstance(op, O.Input):
            findings.append(_finding("IR007", loc, "Input op cannot be fused away"))
        if id(target) not in in_graph:
            findings.append(_finding(
                "IR007", loc, f"fused into {target.name!r} which is not in the graph"))
        elif op not in target.absorbed:
            findings.append(_finding(
                "IR007", loc, f"fused into {target.name!r} but missing from its "
                              "absorbed list"))
        # Fusion chains (a -> b -> anchor) are legal; cycles are not.
        cursor, steps = op, 0
        while cursor.fused_into is not None and steps <= graph_size:
            cursor = cursor.fused_into
            steps += 1
        if steps > graph_size:
            findings.append(_finding("IR007", loc, "fusion chain does not terminate"))
    for absorbed in op.absorbed:
        if absorbed.fused_into is not op:
            findings.append(_finding(
                "IR007", loc, f"absorbed op {absorbed.name!r} does not point back "
                              "via fused_into"))
    return findings


def _check_roofline(op: O.Op, loc: str) -> list[Finding]:
    findings = []
    macs = op.effective_macs(exploit_sparsity=True)
    if not _is_finite_number(macs):
        findings.append(_finding("IR008", loc, f"effective MACs not finite: {macs!r}"))
    moved = (op.traffic_weight_bytes(exploit_sparsity=False)
             + op.input_bytes() + op.output_bytes())
    if not _is_finite_number(moved):
        findings.append(_finding("IR008", loc, f"byte traffic not finite: {moved!r}"))
    elif moved <= 0:
        findings.append(_finding(
            "IR008", loc,
            "op moves zero bytes; arithmetic intensity would be infinite"))
    return findings


def verify_transform(kind: str, base: Graph, transformed: Graph,
                     label: str | None = None) -> list[Finding]:
    """Check the conservation contract of one transform output (IR101-IR104).

    ``kind`` is one of ``fuse``/``prune``/``quantize``/``freeze``; ``base``
    is the untransformed graph the invariants are stated against.
    """
    if kind not in _CONSERVATION_RULE:
        raise ValueError(f"unknown transform kind {kind!r}")
    rule = _CONSERVATION_RULE[kind]
    label = label or f"{base.name}@{kind}"
    where = f"graph:{label}"
    findings = []

    if len(transformed.ops) != len(base.ops):
        findings.append(_finding(rule, where, f"op count changed: {len(base.ops)} -> "
                                              f"{len(transformed.ops)}"))
    if transformed.total_macs != base.total_macs:
        findings.append(_finding(rule, where, f"total MACs changed: {base.total_macs} -> "
                                              f"{transformed.total_macs}"))
    if transformed.total_params != base.total_params:
        findings.append(_finding(
            rule, where, f"total params changed: {base.total_params} -> "
                         f"{transformed.total_params}"))

    if kind == "quantize":
        dtypes = {op.weight_dtype for op in transformed.ops}
        if len(dtypes) != 1:
            findings.append(_finding(rule, where, "non-uniform weight dtypes after "
                                                  "quantization"))
        if transformed.weight_bytes() > base.weight_bytes():
            findings.append(_finding(rule, where, "quantization increased weight bytes"))
    if kind == "freeze":
        for op in transformed.ops:
            if isinstance(op, O.Dropout) and not op.is_fused_away:
                findings.append(_finding(
                    rule, f"{where}/{op.name}", "Dropout survived freezing"))
    return findings


def verify_transforms(graph: Graph, label: str | None = None) -> list[Finding]:
    """Apply every transform to ``graph`` and verify output + conservation."""
    label = label or graph.name
    findings: list[Finding] = []
    fused = fuse_graph(graph)
    outputs = [
        ("fuse", graph, fused),
        ("prune", graph, prune_graph(graph, sparsity=0.5)),
        ("quantize", graph, quantize_graph(graph, DType.INT8)),
        ("freeze", graph, freeze_graph(graph)),
        # Composition: freezing a fused graph exercises fusion *chains*
        # (Dropout folded into an op that is itself fused away).
        ("freeze", fused, freeze_graph(fused)),
    ]
    for kind, base, transformed in outputs:
        step = f"{label}@{kind}" if base is graph else f"{label}@fuse+{kind}"
        findings += verify_graph(transformed, label=step)
        findings += verify_transform(kind, base, transformed, label=step)
    return findings


def verify_model(model_name: str) -> list[Finding]:
    """Verify one zoo model and all of its transform outputs."""
    from repro.models import load_model

    graph = load_model(model_name)
    findings = verify_graph(graph)
    if not findings:  # transforms of a malformed graph would double-report
        findings += verify_transforms(graph)
    return findings


def run(models: list[str] | None = None) -> list[Finding]:
    """IR pass entry point: every zoo model (or ``models``) + transforms."""
    from repro.models import list_models

    findings: list[Finding] = []
    for name in models if models is not None else list_models():
        findings += verify_model(name)
    return findings
