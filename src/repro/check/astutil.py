"""Shared AST plumbing for the source-level check passes.

Three passes walk the package source — the architectural linter
(:mod:`repro.check.arch`), the dimensional analyzer
(:mod:`repro.check.units`) and the effect-inference pass
(:mod:`repro.check.effects`).  Each used to re-implement the same three
chores; this module is the single copy:

* **module discovery** — :func:`package_root` finds the installed
  ``repro`` package and :func:`load_package` parses every module under it
  into :class:`SourceModule` records (source, AST, package-relative path,
  suppression index) so a multi-pass run parses each file once.
* **AST helpers** — :func:`dotted_chain` / :func:`call_name` normalize
  the ``a.b.c(...)`` shapes every pass pattern-matches on.
* **nondeterminism classification** — :func:`classify_nondet` is the one
  catalog of impurity primitives (RNG, wall clocks, ``uuid``/``secrets``,
  ``os.urandom``) behind ARCH004–ARCH007 *and* the interprocedural
  RACE004 rule, so "what counts as nondeterministic" has exactly one
  definition.  :class:`NondetImports` tracks ``from random import ...``
  aliases so renamed imports don't evade it.

The suppression-comment grammar stays in :mod:`repro.check.suppress`
(it is shared with non-AST tooling); the path helpers are re-exported
here so AST passes need only one import.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.check.suppress import SuppressionIndex, display_path, relative_parts

__all__ = [
    "NondetCall",
    "NondetImports",
    "SourceModule",
    "call_name",
    "classify_nondet",
    "display_path",
    "dotted_chain",
    "load_package",
    "load_source",
    "package_root",
    "relative_parts",
]


# -- module discovery ------------------------------------------------------
def package_root() -> Path:
    """Directory of the installed ``repro`` package (the check target)."""
    import repro

    return Path(repro.__file__).resolve().parent


@dataclass(frozen=True)
class SourceModule:
    """One parsed module: everything a source-level pass needs, read once."""

    path: str
    display: str
    parts: tuple[str, ...]
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex

    @property
    def layer(self) -> str:
        """Top-level package directory (``engine``, ``fleet``, ...)."""
        return self.parts[0] if len(self.parts) > 1 else ""


def load_source(source: str, path: str) -> SourceModule:
    """Parse one module's source text into a :class:`SourceModule`."""
    return SourceModule(
        path=path,
        display=display_path(path),
        parts=relative_parts(path),
        source=source,
        tree=ast.parse(source, filename=path),
        suppressions=SuppressionIndex.from_source(source),
    )


def load_package(root: Path | None = None) -> list[SourceModule]:
    """Every module under ``root`` (default: the installed package), sorted."""
    root = Path(root) if root is not None else package_root()
    return [load_source(path.read_text(), str(path))
            for path in sorted(root.rglob("*.py"))]


# -- AST helpers -----------------------------------------------------------
def dotted_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty for non-name chains."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
        return list(reversed(chain))
    return []


def call_name(node: ast.Call) -> str | None:
    """The called function's simple name (``f`` for both ``f()`` and ``o.f()``)."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


# -- nondeterminism primitives --------------------------------------------
_TIME_FUNCS = ("time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
               "perf_counter_ns", "process_time", "process_time_ns")
_RANDOM_MODULES = ("random", "secrets", "uuid")
_DATETIME_NOW = ("now", "utcnow", "today")


@dataclass(frozen=True)
class NondetCall:
    """One classified impurity primitive at a call site.

    ``kind`` is the decision axis the rules filter on:

    * ``"rng-seeded"`` — ``default_rng(seed)``; deterministic, so only the
      strict layers (ARCH005–ARCH007) ban it.
    * ``"rng-unseeded"`` — ``default_rng()`` seeding from the OS.
    * ``"random-module"`` — any ``random``/``secrets``/``uuid`` call.
    * ``"wall-clock"`` — ``time.*`` clocks and ``datetime.now``-family.
    * ``"urandom"`` — ``os.urandom``.
    * ``"imported"`` — a call through a ``from random import ...`` alias.
    """

    kind: str
    description: str

    @property
    def deterministic(self) -> bool:
        """Whether the call is reproducible (seeded RNG is; clocks aren't)."""
        return self.kind == "rng-seeded"


class NondetImports:
    """Tracks names imported *from* the nondeterminism modules.

    ``from random import random as jitter`` binds ``jitter`` in the module
    namespace; recording the aliases lets :func:`classify_nondet` catch the
    later bare ``jitter()`` call.
    """

    def __init__(self) -> None:
        self.names: set[str] = set()

    def visit_import_from(self, node: ast.ImportFrom) -> None:
        if node.module in _RANDOM_MODULES:
            self.names.update(alias.asname or alias.name
                              for alias in node.names)
        elif node.module == "time":
            self.names.update(alias.asname or alias.name
                              for alias in node.names
                              if alias.name in _TIME_FUNCS)

    def collect(self, tree: ast.AST) -> "NondetImports":
        """Scan a whole tree (module-level and local imports alike)."""
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                self.visit_import_from(node)
        return self


def classify_nondet(node: ast.Call, imports: NondetImports | None = None
                    ) -> NondetCall | None:
    """Classify one call against the impurity-primitive catalog.

    Returns ``None`` for calls that are deterministic as far as the
    catalog knows.  The caller decides which kinds its contract bans —
    every ARCH/RACE determinism rule routes through this one function.
    """
    name = call_name(node)
    if name == "default_rng":
        if node.args or node.keywords:
            return NondetCall("rng-seeded", "default_rng(seed)")
        return NondetCall("rng-unseeded", "unseeded default_rng()")
    chain = dotted_chain(node.func)
    if chain:
        root, leaf = chain[0], chain[-1]
        dotted = ".".join(chain)
        if root in _RANDOM_MODULES or "random" in chain[:-1]:
            return NondetCall("random-module", f"{dotted}()")
        if root == "time" and leaf in _TIME_FUNCS:
            return NondetCall("wall-clock", f"{dotted}()")
        if root == "datetime" and leaf in _DATETIME_NOW:
            return NondetCall("wall-clock", f"{dotted}()")
        if root == "os" and leaf == "urandom":
            return NondetCall("urandom", "os.urandom()")
    if imports is not None and isinstance(node.func, ast.Name) \
            and node.func.id in imports.names:
        return NondetCall(
            "imported",
            f"{node.func.id}() (imported from a random/time module)")
    return None
