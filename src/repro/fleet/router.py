"""Routing policies: who serves the next epoch's arrivals.

The simulator routes per *epoch*, not per request: at each epoch boundary
a policy sees a snapshot of every node (:class:`RoutingView`) and returns
an integer quota per node; the epoch's arrivals are then spread across
nodes by an order-preserving interleave, so each node receives its share
as a FIFO subsequence of the arrival stream.  Quotas are capped by the
admission limits in the view — a policy can also return fewer than
``count`` total, and the simulator drops the overflow (admission
control).

All policies are deterministic: same view, same quotas.  The water-fill
solver and the interleave are vectorized — routing a million requests
costs a few array ops per epoch, not a million policy calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RoutingView:
    """What a policy is allowed to see at one epoch boundary.

    Attributes:
        outstanding: per-node queued + in-service request counts.
        limits: per-node admission headroom (new requests the node may
            accept this epoch; ``inf`` = unbounded).
        energy_per_request_j: per-node active energy of one request.
        capacity: per-node requests servable this epoch at full batch
            without growing the queue.
    """

    outstanding: np.ndarray
    limits: np.ndarray
    energy_per_request_j: np.ndarray
    capacity: np.ndarray

    @property
    def node_count(self) -> int:
        return int(self.outstanding.size)


class Router:
    """Base policy: subclasses override :meth:`quotas`."""

    name = "base"

    def quotas(self, view: RoutingView, count: int) -> np.ndarray:
        """Integer assignments per node, summing to at most ``count``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any cross-epoch state (round-robin offsets etc.)."""


def water_fill(count: int, base: np.ndarray, limits: np.ndarray) -> np.ndarray:
    """Split ``count`` across nodes, equalizing ``base + quota``.

    The classic water-filling allocation with per-node caps: find the
    level ``L`` such that ``sum(clip(L - base, 0, limits)) == count`` and
    hand out the integer floor, then distribute the remainder to the
    nodes with the largest fractional parts (ties broken by index, so the
    split is deterministic).  Returns quotas summing to
    ``min(count, sum(limits))``.
    """
    limits = np.minimum(limits, float(count))
    total_cap = float(limits.sum())
    if total_cap <= count:
        return limits.astype(np.int64)
    # Binary search the water level over the piecewise-linear supply curve.
    low = float(base.min())
    high = float((base + limits).max())
    for _ in range(64):
        mid = 0.5 * (low + high)
        supplied = np.clip(mid - base, 0.0, limits).sum()
        if supplied < count:
            low = mid
        else:
            high = mid
    exact = np.clip(high - base, 0.0, limits)
    quotas = np.floor(exact).astype(np.int64)
    shortfall = count - int(quotas.sum())
    if shortfall > 0:
        fractional = exact - quotas
        fractional = np.where(quotas < limits, fractional, -1.0)
        order = np.lexsort((np.arange(base.size), -fractional))
        quotas[order[:shortfall]] += 1
    return quotas


def interleave(quotas: np.ndarray) -> np.ndarray:
    """Node index per arrival, spreading each node's share evenly.

    Each node's ``q`` requests sit at evenly spaced virtual positions
    ``(k + 0.5) / q``; a stable argsort merges them, so every node sees
    its arrivals in FIFO order and no node's share clumps at one end of
    the epoch.
    """
    total = int(quotas.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    node_ids = np.repeat(np.arange(quotas.size, dtype=np.int64), quotas)
    offsets = np.repeat(np.cumsum(quotas) - quotas, quotas)
    within = np.arange(total, dtype=np.float64) - offsets
    positions = (within + 0.5) / np.repeat(quotas, quotas)
    return node_ids[np.argsort(positions, kind="stable")]


class RoundRobinRouter(Router):
    """Blind even split, rotating which node takes the remainder."""

    name = "round-robin"

    def __init__(self) -> None:
        self._offset = 0

    def reset(self) -> None:
        self._offset = 0

    def quotas(self, view: RoutingView, count: int) -> np.ndarray:
        n = view.node_count
        rotation = (np.arange(n) - self._offset) % n
        quotas = water_fill(count, rotation / max(n, 1) * 1e-9, view.limits)
        self._offset = (self._offset + count) % max(n, 1)
        return quotas


class LeastOutstandingRouter(Router):
    """Join-the-shortest-queue at epoch granularity.

    Water-fills on current outstanding counts, so lightly loaded nodes
    absorb more of the epoch and the fleet's queues stay level.
    """

    name = "least-outstanding"

    def quotas(self, view: RoutingView, count: int) -> np.ndarray:
        return water_fill(count, view.outstanding.astype(np.float64),
                          view.limits)


class EnergyAwareRouter(Router):
    """Cheapest joules-per-request first, spilling over on saturation.

    Nodes are ranked by active energy per request; each takes up to its
    spare capacity this epoch before the next-cheapest is touched.
    Overflow beyond the fleet's total capacity water-fills over the
    remaining admission headroom in the same energy order, so sustained
    overload degrades into balanced queueing instead of melting the
    single cheapest node.
    """

    name = "energy-aware"

    def quotas(self, view: RoutingView, count: int) -> np.ndarray:
        order = np.lexsort((np.arange(view.node_count),
                            view.energy_per_request_j))
        caps = np.minimum(view.capacity, view.limits)[order]
        cumulative = np.cumsum(caps)
        fill = np.clip(count - (cumulative - caps), 0.0, caps)
        quotas = np.zeros(view.node_count, dtype=np.int64)
        quotas[order] = fill.astype(np.int64)
        leftover = count - int(quotas.sum())
        if leftover > 0:
            headroom = view.limits - quotas
            rank = np.empty(view.node_count, dtype=np.float64)
            rank[order] = np.arange(view.node_count, dtype=np.float64)
            quotas += water_fill(leftover, rank, headroom)
        return quotas


ROUTER_POLICIES: dict[str, type[Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingRouter.name: LeastOutstandingRouter,
    EnergyAwareRouter.name: EnergyAwareRouter,
}


def make_router(name: str) -> Router:
    """Instantiate a policy by its registry name."""
    try:
        return ROUTER_POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(ROUTER_POLICIES))
        raise ValueError(f"unknown router policy {name!r}; known: {known}") from None
