"""The fleet event loop: vectorized Lindley scans between routing epochs.

A discrete-event simulator in the classic sense would push every request
through a Python heap — microseconds each, minutes per million.  This
loop instead advances the whole fleet epoch by epoch:

1. the horizon is cut into routing epochs (``np.linspace`` edges; one
   ``np.searchsorted`` maps every arrival to its epoch up front);
2. at each epoch boundary the autoscaler adjusts pools, the admission
   policy computes per-node headroom, and the router turns the epoch's
   arrival count into per-node quotas (all vectorized);
3. each node then serves its FIFO with an array program: batch-1 pools
   run the Lindley recursion as a ``np.maximum.accumulate`` scan,
   dynamic-batching pools run one lean iteration per *batch* (not per
   request), exactly the greedy ``batch_server`` semantics, and
   pipelined pools (multi-stage ``Deployment`` replicas) chain one
   Lindley scan per stage — stage ``k`` consumes stage ``k-1``'s finish
   instants;
4. at the epoch's end every node's thermal RC model integrates the
   epoch's average power — DVFS throttling stretches the next epoch's
   service times, and a shutdown drops the node's queue (the Raspberry
   Pi's Figure 14 fate, fleet edition).

Within a node the serving schedule is exact; the epoch grid only
quantizes *routing* decisions (a request cannot be steered by state
younger than one epoch) and thermal integration.  Everything is
deterministic: service times come from cached ``RunRecord``s, arrival
streams are seeded, and policies break ties by index — the same inputs
produce byte-identical :class:`~repro.fleet.report.FleetStats`.
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from repro.fleet.autoscale import AdmissionControl, Autoscaler
from repro.fleet.cluster import Cluster, NodeState, PoolSpec, resolve_profiles
from repro.fleet.report import FleetStats, PoolStats, SojournSummary
from repro.fleet.router import Router, RoutingView, interleave, make_router
from repro.runtime.runner import Runner
from repro.workloads.arrivals import Arrivals, first_n, reseeded

DEFAULT_EPOCHS = 1024
DEFAULT_POLICY = "least-outstanding"

_EMPTY = np.empty(0, dtype=np.float64)


def _advance_fifo(node: NodeState, epoch_end_s: float) -> np.ndarray:
    """Serve a batch-1 node up to ``epoch_end_s``; returns sojourn times.

    The FIFO completion times follow the Lindley recursion
    ``finish_i = max(arrival_i, finish_{i-1}) + service``; with constant
    service ``s`` that closed form is ``finish_i = (i+1)s +
    max(free_at, max_{j<=i}(arrival_j - js))`` — one ``cumsum``-style
    scan, no per-request Python.  Only requests *starting* before the
    epoch end are committed; the rest stay pending so next epoch's
    throttle state can still stretch them.
    """
    service_s = node.profile.service_s * node.throttle_scale
    pending = node.pending
    head = node.head
    count = len(pending) - head
    if count == 0:
        return _EMPTY
    first_start_s = max(pending[head], node.free_at_s)
    if first_start_s >= epoch_end_s:
        return _EMPTY
    if np.isfinite(epoch_end_s):
        # Starts advance by >= service_s each, so the epoch admits at most
        # this many; slicing keeps the scan O(servable), not O(backlog).
        count = min(count, int((epoch_end_s - first_start_s) / service_s) + 2)
    arrivals = np.asarray(pending[head:head + count])
    offsets = service_s * np.arange(count)
    level = np.maximum.accumulate(arrivals - offsets)
    finish = offsets + service_s + np.maximum(node.free_at_s, level)
    starts = finish - service_s
    served = int(np.searchsorted(starts, epoch_end_s, side="left"))
    if not served:
        return _EMPTY
    node.head = head + served
    node.free_at_s = float(finish[served - 1])
    busy_s = served * service_s
    node.busy_s += busy_s
    node.epoch_busy_s += busy_s
    node.completed += served
    node.batches += served
    return finish[:served] - arrivals[:served]


def _advance_batched(node: NodeState, epoch_end_s: float) -> np.ndarray:
    """Serve a dynamic-batching node up to ``epoch_end_s``.

    Greedy ``simulate_batch_serving`` semantics: whenever the node frees
    up it grabs everything queued (up to the pool's effective batch
    limit) and runs it as one batch.  The loop iterates once per batch —
    plain floats and ``bisect``, no ndarray dispatch — and the per-request
    sojourns are expanded vectorially afterwards.  Deferring batches that
    would start after the epoch end is exact: such a batch may only
    contain arrivals up to its start time, and those are all assigned by
    the time the next epoch forms it.
    """
    profile = node.profile
    scale = node.throttle_scale
    wall_s = profile.batch_wall_s
    max_batch = profile.max_batch
    pending = node.pending
    total = len(pending)
    head = node.head
    idx = head
    if idx >= total:
        return _EMPTY
    now_s = node.free_at_s
    finishes: list[float] = []
    sizes: list[int] = []
    busy_s = 0.0
    right = bisect.bisect_right
    while idx < total:
        first = pending[idx]
        start_s = first if first > now_s else now_s
        if start_s >= epoch_end_s:
            break
        size = right(pending, start_s, idx, total) - idx
        if size > max_batch:
            size = max_batch
        duration_s = wall_s[size - 1] * scale
        now_s = start_s + duration_s
        finishes.append(now_s)
        sizes.append(size)
        busy_s += duration_s
        idx += size
    served = idx - head
    if not served:
        return _EMPTY
    arrivals = np.asarray(pending[head:idx])
    finish = np.repeat(finishes, sizes)
    node.head = idx
    node.free_at_s = now_s
    node.busy_s += busy_s
    node.epoch_busy_s += busy_s
    node.completed += served
    node.batches += len(sizes)
    return finish - arrivals


def _advance_pipeline(node: NodeState, epoch_end_s: float) -> np.ndarray:
    """Serve a pipelined node (device chain) up to ``epoch_end_s``.

    Each stage is its own single-server FIFO with constant service time
    (compute plus outgoing transfer), so the chain is a sequence of
    Lindley scans: stage 0 consumes the node's pending arrivals, stage
    ``k`` consumes stage ``k-1``'s finish instants.  A request commits
    when its stage-0 service *starts* before the epoch end — the rest of
    its chain then runs to completion at the current throttle state, the
    pipelined analogue of the batched path running a started batch past
    the epoch boundary.  Sojourns are last-stage finish minus arrival.
    """
    profile = node.profile
    stages = profile.stages
    assert stages is not None
    assert node.stage_free_at_s is not None
    assert node.stage_busy_s is not None
    assert node.stage_epoch_busy_s is not None
    scale = node.throttle_scale
    free = node.stage_free_at_s
    pending = node.pending
    head = node.head
    count = len(pending) - head
    if count == 0:
        return _EMPTY
    first_service_s = stages[0].service_s * scale
    first_start_s = max(pending[head], free[0])
    if first_start_s >= epoch_end_s:
        return _EMPTY
    if np.isfinite(epoch_end_s):
        # Stage-0 starts advance by >= its service each (same cap as the
        # plain FIFO — commitment is decided at stage 0).
        count = min(count, int((epoch_end_s - first_start_s)
                               / first_service_s) + 2)
    arrivals = np.asarray(pending[head:head + count])
    offsets = first_service_s * np.arange(count)
    level = np.maximum.accumulate(arrivals - offsets)
    finish = offsets + first_service_s + np.maximum(free[0], level)
    starts = finish - first_service_s
    served = int(np.searchsorted(starts, epoch_end_s, side="left"))
    if not served:
        return _EMPTY
    finish = finish[:served]
    node.head = head + served
    free[0] = float(finish[-1])
    stage_busy_s = served * first_service_s
    node.stage_busy_s[0] += stage_busy_s
    node.stage_epoch_busy_s[0] += stage_busy_s
    total_busy_s = stage_busy_s
    for position in range(1, len(stages)):
        service_s = stages[position].service_s * scale
        offsets = service_s * np.arange(served)
        level = np.maximum.accumulate(finish - offsets)
        finish = offsets + service_s + np.maximum(free[position], level)
        free[position] = float(finish[-1])
        stage_busy_s = served * service_s
        node.stage_busy_s[position] += stage_busy_s
        node.stage_epoch_busy_s[position] += stage_busy_s
        total_busy_s += stage_busy_s
    node.free_at_s = free[-1]  # the chain frees when its last stage does
    node.busy_s += total_busy_s
    node.epoch_busy_s += total_busy_s
    node.completed += served
    node.batches += served
    return finish - arrivals[:served]


def _advance(node: NodeState, epoch_end_s: float) -> np.ndarray:
    if node.profile.stages is not None:
        return _advance_pipeline(node, epoch_end_s)
    if node.profile.max_batch == 1:
        return _advance_fifo(node, epoch_end_s)
    return _advance_batched(node, epoch_end_s)


class FleetSimulation:
    """A configured fleet, ready to run arrival streams.

    Pool service profiles are resolved once at construction — a single
    ``Runner.run_grid`` over every (pool, batch size) cell, cached and
    bit-identical to the scalar engine path.  Each :meth:`run` rebuilds
    the mutable node state, so repeated runs of the same stream are
    independent and identical.
    """

    def __init__(self, pools: Sequence[PoolSpec], *,
                 router: Router | str = DEFAULT_POLICY,
                 autoscaler: Autoscaler | None = None,
                 admission: AdmissionControl | None = None,
                 epochs: int = DEFAULT_EPOCHS,
                 runner: Runner | None = None,
                 use_timer: bool = False):
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if not pools:
            raise ValueError("a fleet needs at least one pool")
        self.pools = list(pools)
        self.router = make_router(router) if isinstance(router, str) else router
        self.autoscaler = autoscaler
        self.admission = admission or AdmissionControl()
        self.epochs = epochs
        self.profiles = resolve_profiles(self.pools, runner=runner,
                                         use_timer=use_timer)

    @property
    def capacity_rps(self) -> float:
        """Fleet-wide peak service rate with every replica at full batch."""
        return sum(pool.replicas / self.profiles[pool.name].full_batch_request_s
                   for pool in self.pools)

    def run(self, arrival_times: np.ndarray, *, seed: int = 0) -> FleetStats:
        """Serve one arrival stream; returns the :class:`FleetStats` report."""
        arrivals = np.asarray(arrival_times, dtype=np.float64)
        if np.any(np.diff(arrivals) < 0):
            raise ValueError("arrival times must be sorted")
        if arrivals.size == 0:
            # A zero-request run is a valid degenerate simulation: the
            # report is all zeros and never meets an SLO.
            return self._build_stats(
                Cluster(self.pools, self.profiles), arrivals,
                {pool.name: [] for pool in self.pools},
                {pool.name: 0 for pool in self.pools},
                {pool.name: 0 for pool in self.pools}, 0, 0, 0, seed)
        self.router.reset()
        if self.autoscaler is not None:
            self.autoscaler.reset()
        cluster = Cluster(self.pools, self.profiles)
        nodes = cluster.nodes
        if self.autoscaler is not None:
            self._park_standby_replicas(cluster)

        span_s = float(arrivals[-1])
        edges = np.linspace(0.0, max(span_s, 1e-9), self.epochs + 1)
        boundaries = np.searchsorted(arrivals, edges, side="left")
        boundaries[-1] = arrivals.size

        sojourn_chunks: dict[str, list[np.ndarray]] = {
            pool.name: [] for pool in self.pools}
        assigned: dict[str, int] = {pool.name: 0 for pool in self.pools}
        dropped: dict[str, int] = {pool.name: 0 for pool in self.pools}
        rejected = 0
        scale_ups = 0
        scale_downs = 0

        for index in range(self.epochs):
            epoch_start_s = float(edges[index])
            epoch_end_s = float(edges[index + 1])
            dt_s = epoch_end_s - epoch_start_s
            if self.autoscaler is not None:
                for pool in self.pools:
                    action = self.autoscaler.scale(
                        pool.name, cluster.pool_nodes(pool.name), epoch_start_s)
                    scale_ups += action > 0
                    scale_downs += action < 0
            lo = int(boundaries[index])
            hi = int(boundaries[index + 1])
            if hi > lo:
                rejected += self._route(nodes, arrivals[lo:hi],
                                        epoch_start_s, epoch_end_s, assigned)
            for node in nodes:
                node.epoch_busy_s = 0.0
                if node.stage_epoch_busy_s is not None:
                    # Pipelined node: thermal tracks the bottleneck stage,
                    # so the carry is that stage's overhang.
                    for position in range(len(node.stage_epoch_busy_s)):
                        node.stage_epoch_busy_s[position] = 0.0
                    assert node.stage_free_at_s is not None
                    bottleneck = node.profile.bottleneck_index
                    carry_s = max(0.0, node.stage_free_at_s[bottleneck]
                                  - epoch_start_s)
                else:
                    carry_s = max(0.0, node.free_at_s - epoch_start_s)
                if node.depth and not node.shutdown:
                    sojourns = _advance(node, epoch_end_s)
                    if sojourns.size:
                        sojourn_chunks[node.pool].append(sojourns)
                    if node.head > 1024 and node.head * 2 >= len(node.pending):
                        node.compact()
                if dt_s > 0.0:
                    self._step_thermal(node, carry_s, dt_s, dropped)

        # Drain: every queued request completes past the horizon (the
        # throttle state is frozen; no further thermal transitions).
        for node in nodes:
            if node.depth and not node.shutdown:
                sojourns = _advance(node, np.inf)
                if sojourns.size:
                    sojourn_chunks[node.pool].append(sojourns)

        return self._build_stats(cluster, arrivals, sojourn_chunks, assigned,
                                 dropped, rejected, scale_ups, scale_downs,
                                 seed)

    # -- epoch stages --------------------------------------------------------
    def _park_standby_replicas(self, cluster: Cluster) -> None:
        """With an autoscaler, pools start at min_replicas active."""
        assert self.autoscaler is not None
        floor = self.autoscaler.min_replicas
        for pool in self.pools:
            for node in cluster.pool_nodes(pool.name)[floor:]:
                node.active = False

    def _route(self, nodes: list[NodeState], epoch_times: np.ndarray,
               epoch_start_s: float, epoch_end_s: float,
               assigned: dict[str, int]) -> int:
        """Assign one epoch's arrivals; returns the rejected count."""
        count = int(epoch_times.size)
        outstanding = np.empty(len(nodes), dtype=np.float64)
        limits = np.empty(len(nodes), dtype=np.float64)
        energy = np.empty(len(nodes), dtype=np.float64)
        capacity = np.empty(len(nodes), dtype=np.float64)
        for position, node in enumerate(nodes):
            pending = node.outstanding(epoch_start_s)
            outstanding[position] = pending
            routable = (node.active and not node.shutdown
                        and node.available_at_s <= epoch_start_s)
            limits[position] = self.admission.headroom(pending) if routable else 0.0
            energy[position] = node.profile.energy_per_request_j
            spare_s = epoch_end_s - max(node.free_at_s, epoch_start_s)
            per_request_s = (node.profile.full_batch_request_s
                             * node.throttle_scale)
            capacity[position] = min(count, max(0.0, spare_s) / per_request_s)
        view = RoutingView(outstanding=outstanding, limits=limits,
                           energy_per_request_j=energy, capacity=capacity)
        quotas = np.minimum(self.router.quotas(view, count),
                            limits).astype(np.int64)
        total = int(quotas.sum())
        assert total <= count, "router over-assigned the epoch"
        if total:
            admitted = epoch_times[:total]
            assignment = interleave(quotas)
            order = np.argsort(assignment, kind="stable")
            chunks = np.split(admitted[order], np.cumsum(quotas)[:-1])
            for node, chunk in zip(nodes, chunks):
                if chunk.size:
                    node.assign(chunk.tolist())
                    assigned[node.pool] += int(chunk.size)
        return count - total

    def _step_thermal(self, node: NodeState, carry_s: float, dt_s: float,
                      dropped: dict[str, int]) -> None:
        """Integrate one epoch of heat; apply throttle/shutdown effects.

        The epoch's average draw interpolates idle and under-load power by
        the busy fraction (``carry_s`` covers work continuing from earlier
        epochs; batches running past the epoch end are clipped and show up
        again in the next epoch's carry).
        """
        sim = node.thermal_sim
        assert sim is not None
        if sim.shutdown:
            return
        profile = node.profile
        if profile.stages is not None:
            # The profile's thermal spec belongs to the bottleneck stage's
            # device, so integrate that stage's duty cycle and draw.
            assert node.stage_epoch_busy_s is not None
            bottleneck = profile.bottleneck_index
            stage = profile.stages[bottleneck]
            busy_frac = min(1.0, (carry_s + node.stage_epoch_busy_s[bottleneck])
                            / dt_s)
            power_w = stage.idle_w + busy_frac * (stage.power_w - stage.idle_w)
        else:
            busy_frac = min(1.0, (carry_s + node.epoch_busy_s) / dt_s)
            power_w = profile.idle_w + busy_frac * (profile.power_w
                                                    - profile.idle_w)
        sim.step(power_w, dt_s)
        if sim.shutdown:
            node.shutdown = True
            node.active = False
            dropped[node.pool] += node.drain_pending()
            return
        node.throttle_scale = 1.0 / sim.clock_factor if sim.throttled else 1.0

    # -- reporting -----------------------------------------------------------
    def _build_stats(self, cluster: Cluster, arrivals: np.ndarray,
                     sojourn_chunks: dict[str, list[np.ndarray]],
                     assigned: dict[str, int], dropped: dict[str, int],
                     rejected: int, scale_ups: int, scale_downs: int,
                     seed: int) -> FleetStats:
        horizon_s = max(float(arrivals[-1]) if arrivals.size else 0.0,
                        max(node.free_at_s for node in cluster.nodes))
        pool_stats: list[PoolStats] = []
        fleet_sojourns: list[np.ndarray] = []
        fleet_energy_j = 0.0
        for pool in self.pools:
            pool_nodes = cluster.pool_nodes(pool.name)
            profile = self.profiles[pool.name]
            sojourn_s = (np.concatenate(sojourn_chunks[pool.name])
                         if sojourn_chunks[pool.name] else _EMPTY)
            fleet_sojourns.append(sojourn_s)
            completed = sum(node.completed for node in pool_nodes)
            batches = sum(node.batches for node in pool_nodes)
            busy_s = sum(node.busy_s for node in pool_nodes)
            if profile.stages is not None:
                # One energy integral per stage device: each stage idles
                # whenever it is not computing or sending.
                energy_j = sum(
                    node.stage_busy_s[position] * stage.power_w
                    + (horizon_s - node.stage_busy_s[position]) * stage.idle_w
                    for node in pool_nodes
                    for position, stage in enumerate(profile.stages))
                device_seconds = (len(pool_nodes) * len(profile.stages)
                                  * horizon_s)
            else:
                energy_j = sum(
                    node.busy_s * profile.power_w
                    + (horizon_s - node.busy_s) * profile.idle_w
                    for node in pool_nodes)
                device_seconds = len(pool_nodes) * horizon_s
            fleet_energy_j += energy_j
            events = [event for node in pool_nodes
                      for event in node.thermal_sim.events]  # type: ignore[union-attr]
            pool_stats.append(PoolStats(
                name=pool.name,
                scenario=pool.scenario.to_dict(),
                replicas=pool.replicas,
                effective_max_batch=profile.max_batch,
                assigned=assigned[pool.name],
                completed=completed,
                dropped=dropped[pool.name],
                batches=batches,
                mean_batch_size=completed / batches if batches else 0.0,
                max_queue_depth=max(node.max_depth for node in pool_nodes),
                utilization=(busy_s / device_seconds
                             if device_seconds > 0 else 0.0),
                throughput_rps=(completed / horizon_s
                                if horizon_s > 0 else 0.0),
                sojourn=SojournSummary.from_times(sojourn_s),
                energy_j=energy_j,
                energy_per_request_j=energy_j / completed if completed else 0.0,
                throttle_events=sum(event.kind == "throttle_on"
                                    for event in events),
                fan_events=sum(event.kind == "fan_on" for event in events),
                shutdown_events=sum(event.kind == "shutdown"
                                    for event in events),
                final_active_replicas=sum(node.active and not node.shutdown
                                          for node in pool_nodes),
            ))
        all_sojourn_s = (np.concatenate(fleet_sojourns)
                         if fleet_sojourns else _EMPTY)
        completed = int(sum(stats.completed for stats in pool_stats))
        return FleetStats(
            requests=int(arrivals.size),
            completed=completed,
            dropped=sum(stats.dropped for stats in pool_stats),
            rejected=rejected,
            horizon_s=horizon_s,
            throughput_rps=completed / horizon_s if horizon_s > 0 else 0.0,
            sojourn=SojournSummary.from_times(all_sojourn_s),
            energy_j=fleet_energy_j,
            energy_per_request_j=(fleet_energy_j / completed
                                  if completed else 0.0),
            throttle_events=sum(stats.throttle_events for stats in pool_stats),
            fan_events=sum(stats.fan_events for stats in pool_stats),
            shutdown_events=sum(stats.shutdown_events for stats in pool_stats),
            scale_ups=scale_ups,
            scale_downs=scale_downs,
            policy=self.router.name,
            seed=seed,
            epochs=self.epochs,
            pools=tuple(pool_stats),
        )


def simulate_fleet(pools: Sequence[PoolSpec],
                   workload: Arrivals | np.ndarray, *,
                   requests: int | None = None,
                   horizon_s: float | None = None,
                   seed: int = 0,
                   router: Router | str = DEFAULT_POLICY,
                   autoscaler: Autoscaler | None = None,
                   admission: AdmissionControl | None = None,
                   epochs: int = DEFAULT_EPOCHS,
                   runner: Runner | None = None,
                   use_timer: bool = False) -> FleetStats:
    """One-call fleet run: price pools, generate the stream, simulate.

    Args:
        pools: the fleet's device pools.
        workload: an :class:`~repro.workloads.arrivals.Arrivals` process
            (re-seeded with ``seed`` so one knob controls the run) or an
            explicit sorted array of arrival instants.
        requests: with a process, draw exactly this many arrivals
            (``first_n``); mutually exclusive with ``horizon_s``.
        horizon_s: with a process, generate over this horizon instead.
        seed: the run's seed — applied to the workload process and
            recorded in the report.
        router: policy instance or registry name
            (:data:`~repro.fleet.router.ROUTER_POLICIES`).
        autoscaler / admission: optional scaling and admission control.
        epochs: routing-epoch count (finer = fresher routing state).
        runner / use_timer: the measurement path for pool pricing.
    """
    if isinstance(workload, np.ndarray):
        if requests is not None or horizon_s is not None:
            raise ValueError("requests/horizon_s only apply to arrival "
                             "processes, not explicit arrival arrays")
        arrival_times = workload
    else:
        process = reseeded(workload, seed)
        if requests is not None and horizon_s is not None:
            raise ValueError("pass requests or horizon_s, not both")
        if requests is not None:
            arrival_times = first_n(process, requests)
        elif horizon_s is not None:
            arrival_times = process.generate(horizon_s)
        else:
            raise ValueError("an arrival process needs requests= or horizon_s=")
    simulation = FleetSimulation(pools, router=router, autoscaler=autoscaler,
                                 admission=admission, epochs=epochs,
                                 runner=runner, use_timer=use_timer)
    return simulation.run(arrival_times, seed=seed)
