"""Autoscaling and admission control, driven by queue depth.

Both knobs act at epoch boundaries, on the same state the router sees:

* :class:`AdmissionControl` bounds each node's queue.  The router's
  per-node quota is capped at ``max_queue_per_node - outstanding``;
  arrivals nobody has headroom for are rejected at the front door (they
  never reach a pool), which is what keeps an overloaded fleet's tail
  latency finite.
* :class:`Autoscaler` turns replicas on and off per pool.  When the mean
  outstanding per active node crosses ``high_depth`` a standby replica is
  woken (paying the deployment's ``init_time_s`` before it takes
  traffic); when it falls below ``low_depth`` one replica stops taking
  new work and drains.  A per-pool cooldown stops flapping.

Deactivated replicas keep serving their backlog — scaling down never
drops requests — and still draw idle power in the energy account, the
honest cost of keeping hardware racked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.cluster import NodeState


@dataclass(frozen=True)
class AdmissionControl:
    """Per-node queue bound; ``None`` admits everything."""

    max_queue_per_node: int | None = None

    def __post_init__(self) -> None:
        if self.max_queue_per_node is not None and self.max_queue_per_node < 1:
            raise ValueError("max_queue_per_node must be >= 1")

    def headroom(self, outstanding: int) -> float:
        """New requests a node may accept this epoch (inf = unbounded)."""
        if self.max_queue_per_node is None:
            return float("inf")
        return float(max(0, self.max_queue_per_node - outstanding))


@dataclass
class Autoscaler:
    """Queue-depth pool scaler with hysteresis and cooldown.

    Attributes:
        high_depth: mean outstanding per active node that triggers a
            scale-up.
        low_depth: mean outstanding per active node below which one
            replica is drained.
        min_replicas: floor of active replicas per pool.
        cooldown_epochs: epochs a pool waits between scaling actions.
    """

    high_depth: float = 8.0
    low_depth: float = 1.0
    min_replicas: int = 1
    cooldown_epochs: int = 4
    _cooldowns: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.low_depth >= self.high_depth:
            raise ValueError("autoscale hysteresis requires low_depth < high_depth")
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.cooldown_epochs < 0:
            raise ValueError("cooldown_epochs must be >= 0")

    def reset(self) -> None:
        self._cooldowns.clear()

    def scale(self, pool_name: str, nodes: list[NodeState],
              now_s: float) -> int:
        """Apply one epoch's decision to a pool's nodes.

        Returns -1, 0 or +1 (the action taken).  Scale-up activates the
        longest-parked standby replica and charges the deployment's init
        time before it becomes routable; scale-down deactivates the
        active replica with the shortest queue so the drain is quick.
        """
        remaining = self._cooldowns.get(pool_name, 0)
        if remaining > 0:
            self._cooldowns[pool_name] = remaining - 1
            return 0
        serving = [node for node in nodes if node.active and not node.shutdown]
        standby = [node for node in nodes if not node.active and not node.shutdown]
        if not serving:
            if not standby:
                return 0
            self._activate(standby[0], now_s)
            self._cooldowns[pool_name] = self.cooldown_epochs
            return 1
        depth = sum(node.outstanding(now_s) for node in serving) / len(serving)
        if depth > self.high_depth and standby:
            self._activate(standby[0], now_s)
            self._cooldowns[pool_name] = self.cooldown_epochs
            return 1
        if depth < self.low_depth and len(serving) > self.min_replicas:
            quietest = min(serving, key=lambda node: (node.depth, node.index))
            quietest.active = False
            self._cooldowns[pool_name] = self.cooldown_epochs
            return -1
        return 0

    @staticmethod
    def _activate(node: NodeState, now_s: float) -> None:
        node.active = True
        node.available_at_s = now_s + node.profile.init_time_s
