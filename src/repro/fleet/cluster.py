"""Device pools: the fleet's capacity, priced by the engine.

A :class:`PoolSpec` is *n* identical replicas of one deployment — either
one :class:`~repro.runtime.scenario.Scenario` (model, device, framework,
dtype) plus a dynamic-batching limit, or a multi-stage
:class:`~repro.placement.deployment.Deployment` whose replicas are whole
device *chains*.  Before a simulation starts, every scenario pool's
per-batch service times are resolved in a single ``Runner.run_grid`` call
(:func:`resolve_profiles`): the whole fleet's pricing is one compiled
sweep, cached in the engine's record cache, and bit-identical to
measuring each cell alone.  A batch size that fails to deploy (out of
memory, Table V style) caps the pool's effective batch limit instead of
crashing the fleet.  Deployment pools arrive already priced — the
lowering rules attach per-stage compute/transfer/power — so their
profiles are derived without touching the engine.

During the simulation each replica is a :class:`NodeState`: a FIFO of
assigned arrival instants, a Lindley clock (``free_at_s``), a thermal
integrator, and the counters the report aggregates.  Pipelined replicas
additionally carry one Lindley clock and busy counter per stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.core.errors import ReproError
from repro.hardware import load_device
from repro.hardware.thermal import ThermalSimulator, ThermalSpec
from repro.placement.deployment import Deployment
from repro.runtime.record import RunRecord
from repro.runtime.runner import Runner, default_runner
from repro.runtime.scenario import Scenario


@dataclass(frozen=True)
class PoolSpec:
    """A homogeneous pool of replicas serving one deployment.

    Attributes:
        name: pool label in reports (defaults to the device name).
        scenario: the deployment every replica runs; must have
            ``batch_size == 1`` — the pool sweeps batch sizes itself.
            For multi-stage pools this is the first stage's scenario.
        replicas: number of identical nodes (device chains, if pipelined).
        max_batch: dynamic-batching limit per node (1 = the paper's
            single-batch edge regime; multi-stage pools are batch-1).
        deployment: the multi-stage deployment this pool serves, or None
            for the classic single-scenario pool.  Build through
            :meth:`from_deployment`, which normalizes single-node
            deployments onto the plain scenario path.
    """

    name: str
    scenario: Scenario
    replicas: int
    max_batch: int = 1
    deployment: Deployment | None = None

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.scenario.batch_size != 1:
            raise ValueError(
                "pool scenarios are batch-1; the pool sweeps batch sizes "
                f"up to max_batch (got batch_size={self.scenario.batch_size})")
        if self.deployment is not None:
            if self.deployment.is_single_node:
                raise ValueError(
                    "single-node deployments take the plain scenario path; "
                    "build the pool with PoolSpec.from_deployment")
            if self.max_batch != 1:
                raise ValueError(
                    "pipelined pools serve batch-1 (stages stream single "
                    f"inferences), got max_batch={self.max_batch}")
            if self.scenario != self.deployment.stages[0].scenario:
                raise ValueError(
                    "a deployment pool's scenario must be its first stage's")

    @classmethod
    def from_deployment(cls, name: str, deployment: Deployment,
                        replicas: int, max_batch: int = 1) -> "PoolSpec":
        """The pool serving ``deployment`` on ``replicas`` chains.

        Single-node deployments come back as a PLAIN scenario pool — the
        deployment wrapper is dropped, so pricing and serving go through
        the exact legacy path, bit-identical by construction.
        """
        if deployment.is_single_node:
            return cls(name=name, scenario=deployment.stages[0].scenario,
                       replicas=replicas, max_batch=max_batch)
        return cls(name=name, scenario=deployment.stages[0].scenario,
                   replicas=replicas, max_batch=max_batch,
                   deployment=deployment)

    def scenario_grid(self) -> list[Scenario]:
        """One scenario per candidate batch size, for ``Runner.run_grid``.

        Deployment pools contribute nothing: the lowering rule already
        priced every stage, so there is nothing left to sweep.
        """
        if self.deployment is not None:
            return []
        return [replace(self.scenario, batch_size=batch)
                for batch in range(1, self.max_batch + 1)]

    def describe(self) -> str:
        if self.deployment is not None:
            chain = " + ".join(self.deployment.devices)
            return (f"{self.replicas}x [{self.deployment.kind} {chain} "
                    f"over {self.deployment.link}]")
        return (f"{self.replicas}x {self.scenario.device} via "
                f"{self.scenario.framework} (max_batch {self.max_batch})")


@dataclass(frozen=True)
class StageProfile:
    """One pipeline stage's serving characteristics inside a profile.

    Attributes:
        device: the stage's device name (reports and energy accounting).
        service_s: stage occupancy per inference — compute plus outgoing
            transfer (the stage clock advances by this much per request).
        compute_s: the compute part alone (active-energy accounting).
        power_w: stage device draw while computing.
        idle_w: stage device draw while idle.
    """

    device: str
    service_s: float
    compute_s: float
    power_w: float
    idle_w: float


@dataclass(frozen=True)
class ServiceProfile:
    """A pool's engine-priced serving characteristics, resolved once.

    Attributes:
        batch_wall_s: seconds to finish a whole batch, indexed by
            ``batch - 1`` (``batched_latency_fn`` semantics: per-inference
            latency times the batch size).  For pipelined pools this is
            the one-entry end-to-end latency of a lone request.
        max_batch: effective batching limit — the requested limit, capped
            below the first batch size whose deployment failed.
        power_w: device draw while inferencing (from the run record; for
            pipelined pools, the whole chain flat out).
        idle_w: device draw while idle (from ``hardware.power``; summed
            over the chain for pipelined pools).
        init_time_s: one-time session setup cost (autoscale wake latency).
        thermal: the lumped-RC thermal spec of the device (single) or of
            the bottleneck stage's device (pipelined).
        cell_seed: the pool scenario's canonical measurement seed.
        stages: per-stage profiles for pipelined pools, None otherwise —
            the discriminator the simulator dispatches on.
    """

    batch_wall_s: tuple[float, ...]
    max_batch: int
    power_w: float
    idle_w: float
    init_time_s: float
    thermal: ThermalSpec
    cell_seed: int
    stages: tuple[StageProfile, ...] | None = None

    @property
    def service_s(self) -> float:
        """Batch-1 service time (one request through every stage)."""
        return self.batch_wall_s[0]

    @property
    def full_batch_request_s(self) -> float:
        """Per-request service time at peak throughput.

        Pipelined pools stream: the steady-state rate is set by the
        bottleneck stage, not the end-to-end latency.
        """
        if self.stages is not None:
            return self.stages[self.bottleneck_index].service_s
        return self.batch_wall_s[self.max_batch - 1] / self.max_batch

    @property
    def energy_per_request_j(self) -> float:
        """Active energy of one unbatched inference (routing heuristic)."""
        if self.stages is not None:
            return sum(stage.power_w * stage.compute_s
                       for stage in self.stages)
        return self.power_w * self.service_s

    @property
    def bottleneck_index(self) -> int:
        """Index of the slowest stage (first on ties); pipelined only."""
        assert self.stages is not None
        best = 0
        for index, stage in enumerate(self.stages):
            if stage.service_s > self.stages[best].service_s:
                best = index
        return best

    def batch_time_s(self, batch: int) -> float:
        return self.batch_wall_s[batch - 1]


def resolve_profiles(pools: Sequence[PoolSpec],
                     runner: Runner | None = None,
                     use_timer: bool = False) -> dict[str, ServiceProfile]:
    """Price every pool in one compiled, cached sweep.

    All pools' batch-size grids are concatenated into a single
    ``Runner.run_grid`` call, so deployments and plans are deduplicated
    across pools and every service time comes from (and lands in) the
    engine's record cache.  A failure at batch 1 means the pool cannot
    serve at all and re-raises the structured error; a failure at a larger
    batch (e.g. activation memory overflow) caps ``max_batch`` there.
    """
    runner = runner or default_runner()
    pools = list(pools)
    _check_unique_names(pools)
    grid = [scenario for pool in pools for scenario in pool.scenario_grid()]
    # run_grid's wall-clock calls stamp compile-stage *stats* only; the
    # records it returns are seeded and bit-identical run to run.
    records = runner.run_grid(grid, use_timer=use_timer)  # repro: allow[RACE004] perf_counter stamps stats, results deterministic
    profiles: dict[str, ServiceProfile] = {}
    cursor = 0
    for pool in pools:
        if pool.deployment is not None:
            # Deployment pools were priced by their lowering rule; the
            # grid contains no cells for them.
            profiles[pool.name] = _profile_from_deployment(pool)
            continue
        pool_records = records[cursor:cursor + pool.max_batch]
        cursor += pool.max_batch
        profiles[pool.name] = _profile_from_records(pool, pool_records)
    return profiles


def _check_unique_names(pools: Sequence[PoolSpec]) -> None:
    seen: set[str] = set()
    for pool in pools:
        if pool.name in seen:
            raise ValueError(f"duplicate pool name {pool.name!r}")
        seen.add(pool.name)


def _profile_from_records(pool: PoolSpec,
                          records: Sequence[RunRecord]) -> ServiceProfile:
    base = records[0]
    if base.failed:
        assert base.failure is not None
        raise ReproError(
            f"pool {pool.name!r} cannot deploy {pool.scenario.describe()}: "
            f"[{base.failure.kind}] {base.failure.message}")
    batch_wall_s: list[float] = []
    for batch, record in enumerate(records, start=1):
        if record.failed:
            break  # e.g. OOM at this batch size: cap the pool below it
        assert record.latency_s is not None
        batch_wall_s.append(record.latency_s * batch)
    device = load_device(pool.scenario.device)
    assert base.power_w is not None and base.init_time_s is not None
    return ServiceProfile(
        batch_wall_s=tuple(batch_wall_s),
        max_batch=len(batch_wall_s),
        power_w=base.power_w,
        idle_w=device.power.idle_w,
        init_time_s=base.init_time_s,
        thermal=device.thermal,
        cell_seed=pool.scenario.seed,
    )


def _profile_from_deployment(pool: PoolSpec) -> ServiceProfile:
    """Derive a pipelined profile from an already-priced deployment.

    Pure: the lowering rule attached per-stage compute, transfer, power
    and init costs, so no engine call happens here.  A stage with zero
    occupancy would stall the per-stage Lindley clocks, so it is a
    structured error.
    """
    deployment = pool.deployment
    assert deployment is not None
    stages = []
    for position, stage in enumerate(deployment.stages):
        if not stage.service_s > 0:
            raise ReproError(
                f"pool {pool.name!r} stage {position} has zero service "
                f"time ({stage.scenario.describe()}): unpriced deployment?")
        stages.append(StageProfile(
            device=stage.scenario.device,
            service_s=stage.service_s,
            compute_s=stage.compute_s,
            power_w=stage.power_w,
            idle_w=stage.idle_w,
        ))
    profile_stages = tuple(stages)
    bottleneck = max(range(len(profile_stages)),
                     key=lambda i: profile_stages[i].service_s)
    bottleneck_device = load_device(profile_stages[bottleneck].device)
    return ServiceProfile(
        batch_wall_s=(deployment.latency_s,),
        max_batch=1,
        power_w=sum(stage.power_w for stage in profile_stages),
        idle_w=sum(stage.idle_w for stage in profile_stages),
        init_time_s=max(stage.init_time_s for stage in deployment.stages),
        thermal=bottleneck_device.thermal,
        cell_seed=pool.scenario.seed,
        stages=profile_stages,
    )


@dataclass
class NodeState:
    """One replica's mutable serving state.

    The pending FIFO holds assigned-but-unserved arrival instants;
    ``head`` is the consumption cursor (the list is compacted
    periodically rather than popped per request).  ``free_at_s`` is the
    Lindley clock: when the node finishes everything already started.
    """

    pool: str
    index: int
    profile: ServiceProfile
    active: bool = True
    available_at_s: float = 0.0
    free_at_s: float = 0.0
    busy_s: float = 0.0
    epoch_busy_s: float = 0.0
    completed: int = 0
    batches: int = 0
    shutdown: bool = False
    throttle_scale: float = 1.0
    pending: list[float] = field(default_factory=list)
    head: int = 0
    max_depth: int = 0
    thermal_sim: ThermalSimulator | None = None
    # Per-stage Lindley clocks and busy counters; None for single-node
    # replicas (the discriminator mirrors ``profile.stages``).
    stage_free_at_s: list[float] | None = None
    stage_busy_s: list[float] | None = None
    stage_epoch_busy_s: list[float] | None = None

    def __post_init__(self) -> None:
        if self.thermal_sim is None:
            self.thermal_sim = ThermalSimulator(self.profile.thermal)
        if self.profile.stages is not None and self.stage_free_at_s is None:
            count = len(self.profile.stages)
            self.stage_free_at_s = [0.0] * count
            self.stage_busy_s = [0.0] * count
            self.stage_epoch_busy_s = [0.0] * count

    @property
    def depth(self) -> int:
        """Requests assigned and not yet completed (queued + batching)."""
        return len(self.pending) - self.head

    def outstanding(self, now_s: float) -> int:
        """Queue depth plus the batch still in service at ``now_s``."""
        return self.depth + (1 if self.free_at_s > now_s else 0)

    def assign(self, arrival_times: Iterable[float]) -> int:
        """Append newly routed arrivals (already sorted); returns count."""
        before = len(self.pending)
        self.pending.extend(arrival_times)
        added = len(self.pending) - before
        self.max_depth = max(self.max_depth, self.depth)
        return added

    def compact(self) -> None:
        """Drop consumed prefix so the FIFO does not grow without bound."""
        if self.head:
            del self.pending[:self.head]
            self.head = 0

    def drain_pending(self) -> int:
        """Discard the queue (thermal shutdown); returns requests lost."""
        lost = self.depth
        self.pending.clear()
        self.head = 0
        return lost


class Cluster:
    """The fleet: every pool's nodes plus the index arrays routers use."""

    def __init__(self, pools: Sequence[PoolSpec],
                 profiles: dict[str, ServiceProfile]):
        self.pools = list(pools)
        self.profiles = profiles
        self.nodes: list[NodeState] = []
        for pool in self.pools:
            profile = profiles[pool.name]
            for index in range(pool.replicas):
                self.nodes.append(NodeState(pool=pool.name, index=index,
                                            profile=profile))

    def pool_nodes(self, name: str) -> list[NodeState]:
        return [node for node in self.nodes if node.pool == name]

    def __len__(self) -> int:
        return len(self.nodes)
