"""`repro.fleet`: a vectorized fleet-scale serving simulator.

The paper measures one device at a time; a production deployment is a
heterogeneous *fleet* — pools of Nanos, TX2s and Pis behind a router,
serving millions of requests (the Section VI-C single-batch-vs-batched
contrast at scale; DeepEdgeBench and pCAMP compare exactly such fleets).
This package simulates that:

* :mod:`~repro.fleet.cluster` — pools of identical replicas, each pool one
  :class:`~repro.runtime.scenario.Scenario` whose per-batch service times
  are resolved **once** through ``Runner.run_grid`` (cached, bit-identical
  to the paper's engine path), plus per-node mutable serving state;
* :mod:`~repro.fleet.router` — pluggable epoch routing policies
  (round-robin, least-outstanding, energy-aware);
* :mod:`~repro.fleet.autoscale` — queue-depth autoscaling and admission
  control;
* :mod:`~repro.fleet.simulate` — the event loop: vectorized Lindley scans
  per node between routing epochs (a million requests in seconds, not a
  per-request Python heap);
* :mod:`~repro.fleet.report` — :class:`~repro.fleet.report.FleetStats`:
  p50/p99/p999 sojourn, throughput, energy per request, thermal events,
  per-pool utilization and drop fractions, JSON round-trippable.

Everything is seeded and deterministic: the same pools, workload and seed
produce byte-identical reports.
"""

from repro.fleet.autoscale import AdmissionControl, Autoscaler
from repro.fleet.cluster import (
    Cluster,
    NodeState,
    PoolSpec,
    ServiceProfile,
    StageProfile,
    resolve_profiles,
)
from repro.fleet.report import FleetStats, PoolStats, SojournSummary
from repro.fleet.router import (
    ROUTER_POLICIES,
    EnergyAwareRouter,
    LeastOutstandingRouter,
    RoundRobinRouter,
    Router,
    RoutingView,
    make_router,
)
from repro.fleet.simulate import FleetSimulation, simulate_fleet

__all__ = [
    "AdmissionControl",
    "Autoscaler",
    "Cluster",
    "EnergyAwareRouter",
    "FleetSimulation",
    "FleetStats",
    "LeastOutstandingRouter",
    "NodeState",
    "PoolSpec",
    "PoolStats",
    "ROUTER_POLICIES",
    "RoundRobinRouter",
    "Router",
    "RoutingView",
    "ServiceProfile",
    "StageProfile",
    "SojournSummary",
    "make_router",
    "resolve_profiles",
    "simulate_fleet",
]
