"""FleetStats: the SLO report of one fleet simulation.

One frozen record per run: fleet-level tail latency (p50/p99/p999
sojourn), throughput, energy per request, thermal events and drop
fractions, plus the same breakdown per pool.  Reports round-trip through
JSON losslessly and deterministically — the same pools, workload and seed
always serialize to the same bytes, which is what makes fleet runs
diffable artifacts.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Mapping

import numpy as np

REPORT_VERSION = 1


def _percentile_s(sojourn_s: np.ndarray, percent: float) -> float:
    if sojourn_s.size == 0:
        return 0.0
    return float(np.percentile(sojourn_s, percent))


@dataclass(frozen=True)
class SojournSummary:
    """Latency distribution of completed requests."""

    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    p999_s: float
    max_s: float

    @classmethod
    def from_times(cls, sojourn_s: np.ndarray) -> "SojournSummary":
        if sojourn_s.size == 0:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            mean_s=float(sojourn_s.mean()),
            p50_s=_percentile_s(sojourn_s, 50),
            p95_s=_percentile_s(sojourn_s, 95),
            p99_s=_percentile_s(sojourn_s, 99),
            p999_s=_percentile_s(sojourn_s, 99.9),
            max_s=float(sojourn_s.max()),
        )

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SojournSummary":
        return cls(**payload)


@dataclass(frozen=True)
class PoolStats:
    """One pool's share of the simulation outcome.

    Attributes:
        assigned: requests the router handed this pool.
        completed: requests served to completion.
        dropped: requests lost to thermal shutdown of a replica.
        effective_max_batch: the deployable batching limit (the requested
            one, or lower if larger batches failed to deploy).
        utilization: pool-wide busy fraction (busy seconds over
            replicas x horizon).
        energy_j: total pool energy over the horizon, idle draw included.
        final_active_replicas: replicas taking traffic when the run ended.
    """

    name: str
    scenario: dict[str, Any]
    replicas: int
    effective_max_batch: int
    assigned: int
    completed: int
    dropped: int
    batches: int
    mean_batch_size: float
    max_queue_depth: int
    utilization: float
    throughput_rps: float
    sojourn: SojournSummary
    energy_j: float
    energy_per_request_j: float
    throttle_events: int
    fan_events: int
    shutdown_events: int
    final_active_replicas: int

    @property
    def drop_fraction(self) -> float:
        return self.dropped / self.assigned if self.assigned else 0.0

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["sojourn"] = self.sojourn.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PoolStats":
        data = dict(payload)
        data["sojourn"] = SojournSummary.from_dict(data["sojourn"])
        data["scenario"] = dict(data["scenario"])
        return cls(**data)


@dataclass(frozen=True)
class FleetStats:
    """The outcome of one fleet simulation.

    Conservation holds by construction and is pinned by property tests:
    ``requests == completed + dropped + rejected`` fleet-wide, and
    ``assigned == completed + dropped`` within every pool.

    Attributes:
        rejected: requests refused at the front door (admission control);
            they were never routed to a pool.
        dropped: requests lost inside pools (thermal shutdown).
        horizon_s: wall-clock span of the run (last completion or last
            arrival, whichever is later).
        energy_per_request_j: fleet energy (idle draw included) per
            completed request.
    """

    requests: int
    completed: int
    dropped: int
    rejected: int
    horizon_s: float
    throughput_rps: float
    sojourn: SojournSummary
    energy_j: float
    energy_per_request_j: float
    throttle_events: int
    fan_events: int
    shutdown_events: int
    scale_ups: int
    scale_downs: int
    policy: str
    seed: int
    epochs: int
    pools: tuple[PoolStats, ...]

    @property
    def drop_fraction(self) -> float:
        if not self.requests:
            return 0.0
        return (self.dropped + self.rejected) / self.requests

    def meets_slo(self, deadline_s: float, percentile: float = 0.99,
                  max_drop_fraction: float = 0.0) -> bool:
        """True when the sojourn percentile fits the deadline and losses
        stay within ``max_drop_fraction``.

        A run that completed nothing never meets an SLO: its percentile
        summary is the degenerate all-zeros one (no sojourns to
        summarize), which would otherwise pass any deadline.
        """
        target = {0.5: self.sojourn.p50_s, 0.95: self.sojourn.p95_s,
                  0.99: self.sojourn.p99_s,
                  0.999: self.sojourn.p999_s}.get(percentile)
        if target is None:
            raise ValueError(f"unsupported percentile {percentile}")
        if not self.completed:
            return False
        return target <= deadline_s and self.drop_fraction <= max_drop_fraction

    def describe(self) -> str:
        lines = [
            f"fleet: {self.requests} requests over {self.horizon_s:.1f}s "
            f"via {self.policy} "
            f"({self.completed} completed, {self.dropped} dropped, "
            f"{self.rejected} rejected)",
            f"  throughput {self.throughput_rps:.1f} req/s; sojourn "
            f"p50 {self.sojourn.p50_s * 1e3:.1f}ms "
            f"p99 {self.sojourn.p99_s * 1e3:.1f}ms "
            f"p999 {self.sojourn.p999_s * 1e3:.1f}ms",
            f"  energy {self.energy_j:.1f}J "
            f"({self.energy_per_request_j * 1e3:.2f}mJ/request); "
            f"thermal: {self.throttle_events} throttle, "
            f"{self.fan_events} fan, {self.shutdown_events} shutdown",
        ]
        for pool in self.pools:
            lines.append(
                f"  pool {pool.name}: {pool.assigned} assigned, "
                f"util {pool.utilization:.0%}, mean batch "
                f"{pool.mean_batch_size:.1f}, p99 "
                f"{pool.sojourn.p99_s * 1e3:.1f}ms, "
                f"{pool.energy_per_request_j * 1e3:.2f}mJ/request, "
                f"{pool.final_active_replicas}/{pool.replicas} active")
        return "\n".join(lines)

    # -- JSON round trip ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "report_version": REPORT_VERSION,
            "requests": self.requests,
            "completed": self.completed,
            "dropped": self.dropped,
            "rejected": self.rejected,
            "horizon_s": self.horizon_s,
            "throughput_rps": self.throughput_rps,
            "sojourn": self.sojourn.to_dict(),
            "energy_j": self.energy_j,
            "energy_per_request_j": self.energy_per_request_j,
            "throttle_events": self.throttle_events,
            "fan_events": self.fan_events,
            "shutdown_events": self.shutdown_events,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "policy": self.policy,
            "seed": self.seed,
            "epochs": self.epochs,
            "pools": [pool.to_dict() for pool in self.pools],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetStats":
        version = payload.get("report_version")
        if version != REPORT_VERSION:
            raise ValueError(f"unsupported report version {version!r}")
        data = {key: value for key, value in payload.items()
                if key != "report_version"}
        data["sojourn"] = SojournSummary.from_dict(data["sojourn"])
        data["pools"] = tuple(PoolStats.from_dict(pool)
                              for pool in data["pools"])
        return cls(**data)

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FleetStats":
        return cls.from_dict(json.loads(text))
