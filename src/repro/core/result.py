"""Result containers for measurements and harness tables.

A :class:`Measurement` is one scalar observation with enough statistics to
support the paper's methodology (median over 200-1000 timed inferences,
instrument accuracy bounds).  A :class:`ResultTable` is the tabular form the
harness renders for each reproduced figure/table, carrying optional
paper-reported reference values alongside the measured ones.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence


@dataclass(frozen=True)
class Measurement:
    """A scalar observation with dispersion statistics.

    Attributes:
        value: the summary statistic (median unless stated otherwise).
        unit: presentation unit, e.g. ``"s"``, ``"J"``, ``"degC"``.
        samples: number of raw observations behind ``value``.
        stddev: sample standard deviation of the raw observations.
        minimum / maximum: extremes of the raw observations.
    """

    value: float
    unit: str = ""
    samples: int = 1
    stddev: float = 0.0
    minimum: float = math.nan
    maximum: float = math.nan

    @classmethod
    def from_samples(cls, samples: Sequence[float], unit: str = "") -> "Measurement":
        if not samples:
            raise ValueError("cannot summarize an empty sample set")
        values = [float(v) for v in samples]
        count = len(values)
        if count > 1:
            # Sample stdev over compensated float sums: same estimator as
            # statistics.stdev without its exact-Fraction arithmetic, which
            # dominated the timing loop at 200-1000 samples per cell.
            mean = math.fsum(values) / count
            stddev = math.sqrt(
                math.fsum((v - mean) ** 2 for v in values) / (count - 1))
        else:
            stddev = 0.0
        return cls(
            value=statistics.median(values),
            unit=unit,
            samples=count,
            stddev=stddev,
            minimum=min(values),
            maximum=max(values),
        )

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:
        label = f"{self.value:.6g} {self.unit}".strip()
        if self.samples > 1:
            label += f" (n={self.samples}, sd={self.stddev:.3g})"
        return f"Measurement({label})"


@dataclass
class ResultRow:
    """One row of a reproduced table/figure.

    ``cells`` maps column name to value; values may be floats, strings, or
    ``None`` (rendered as the paper's "not available" marker).
    """

    label: str
    cells: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, column: str) -> Any:
        return self.cells[column]

    def get(self, column: str, default: Any = None) -> Any:
        return self.cells.get(column, default)


class ResultTable:
    """An ordered collection of rows with named columns.

    The harness builds one per figure/table; ``title`` and ``caption`` mirror
    the paper, and ``notes`` record substitutions or anchor calibrations.
    """

    def __init__(self, title: str, columns: Sequence[str], caption: str = ""):
        self.title = title
        self.columns = list(columns)
        self.caption = caption
        self.notes: list[str] = []
        self._rows: list[ResultRow] = []

    def add_row(self, label: str, **cells: Any) -> ResultRow:
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown columns {sorted(unknown)}; table has {self.columns}")
        row = ResultRow(label=label, cells=dict(cells))
        self._rows.append(row)
        return row

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    @property
    def rows(self) -> list[ResultRow]:
        return list(self._rows)

    def row(self, label: str) -> ResultRow:
        for candidate in self._rows:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no row labelled {label!r} in table {self.title!r}")

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in table {self.title!r}")
        return [row.get(name) for row in self._rows]

    def labels(self) -> list[str]:
        return [row.label for row in self._rows]

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def to_records(self) -> list[dict[str, Any]]:
        """Flatten to a list of dicts (label included), e.g. for json/csv."""
        return [{"label": row.label, **row.cells} for row in self._rows]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, as used for the paper's cross-model speedup summary."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
