"""Core utilities shared by every subsystem.

This package holds the small, dependency-free building blocks: unit-safe
quantities, error types, generic registries, result containers, and the
experiment runner that the harness builds on.
"""

from repro.core.errors import (
    CompatibilityError,
    ConversionError,
    DeploymentError,
    IncompatibleModelError,
    OutOfMemoryError,
    ReproError,
    ThermalShutdownError,
    UnknownEntryError,
)
from repro.core.experiment import Experiment, ExperimentResult, ExperimentRunner
from repro.core.quantity import (
    GIGA,
    KIBI,
    MEBI,
    GIBI,
    MEGA,
    KILO,
    MILLI,
    MICRO,
    Bytes,
    Celsius,
    Hertz,
    Joules,
    Seconds,
    Watts,
    format_bytes,
    format_seconds,
)
from repro.core.registry import Registry
from repro.core.result import Measurement, ResultRow, ResultTable

__all__ = [
    "Bytes",
    "Celsius",
    "CompatibilityError",
    "ConversionError",
    "DeploymentError",
    "Experiment",
    "ExperimentResult",
    "ExperimentRunner",
    "GIBI",
    "GIGA",
    "Hertz",
    "IncompatibleModelError",
    "Joules",
    "KIBI",
    "KILO",
    "MEBI",
    "MEGA",
    "MICRO",
    "MILLI",
    "Measurement",
    "OutOfMemoryError",
    "Registry",
    "ReproError",
    "ResultRow",
    "ResultTable",
    "Seconds",
    "ThermalShutdownError",
    "UnknownEntryError",
    "Watts",
    "format_bytes",
    "format_seconds",
]
