"""Core utilities shared by every subsystem.

This package holds the small, dependency-free building blocks: unit-safe
quantities, error types, generic registries, result containers, and the
experiment runner that the harness builds on.
"""

from repro.core.errors import (
    CompatibilityError,
    ConversionError,
    DeploymentError,
    IncompatibleModelError,
    OutOfMemoryError,
    ReproError,
    ThermalShutdownError,
    UnknownEntryError,
)
from repro.core.dimension import Dim
from repro.core.experiment import Experiment, ExperimentResult, ExperimentRunner
from repro.core.quantity import (
    DIMENSIONS,
    GIGA,
    KIBI,
    MEBI,
    GIBI,
    MEGA,
    KILO,
    MILLI,
    MICRO,
    Bytes,
    Celsius,
    Flops,
    Hertz,
    Joules,
    Quantity,
    Seconds,
    Watts,
    dimension_of,
    format_bytes,
    format_seconds,
)
from repro.core.registry import Registry
from repro.core.result import Measurement, ResultRow, ResultTable

__all__ = [
    "Bytes",
    "Celsius",
    "CompatibilityError",
    "ConversionError",
    "DIMENSIONS",
    "DeploymentError",
    "Dim",
    "Experiment",
    "Flops",
    "ExperimentResult",
    "ExperimentRunner",
    "GIBI",
    "GIGA",
    "Hertz",
    "IncompatibleModelError",
    "Joules",
    "KIBI",
    "KILO",
    "MEBI",
    "MEGA",
    "MICRO",
    "MILLI",
    "Measurement",
    "OutOfMemoryError",
    "Quantity",
    "Registry",
    "ReproError",
    "ResultRow",
    "ResultTable",
    "Seconds",
    "ThermalShutdownError",
    "UnknownEntryError",
    "Watts",
    "dimension_of",
    "format_bytes",
    "format_seconds",
]
