"""Experiment definition and runner.

Each reproduced figure/table is an :class:`Experiment`: a named callable
producing a :class:`~repro.core.result.ResultTable`, tagged with the paper
section/figure it reproduces.  The :class:`ExperimentRunner` executes a
selection of experiments and collects their outputs — this is what both the
benchmark suite and the ``examples/`` scripts drive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.registry import Registry
from repro.core.result import ResultTable


@dataclass(frozen=True)
class Experiment:
    """A reproducible experiment bound to a paper figure/table.

    Attributes:
        experiment_id: short id used by the harness, e.g. ``"fig02"``.
        paper_reference: e.g. ``"Figure 2, Section VI-A"``.
        description: one-line summary of what the paper reports.
        generator: zero-argument callable returning the result table.
    """

    experiment_id: str
    paper_reference: str
    description: str
    generator: Callable[[], ResultTable]

    def run(self) -> ResultTable:
        return self.generator()


@dataclass
class ExperimentResult:
    """An executed experiment plus bookkeeping."""

    experiment: Experiment
    table: ResultTable
    wall_time_s: float = 0.0


@dataclass
class ExperimentRunner:
    """Runs experiments from a registry and keeps their results."""

    registry: Registry[Experiment]
    results: list[ExperimentResult] = field(default_factory=list)

    def run(self, experiment_id: str) -> ExperimentResult:
        experiment = self.registry.create(experiment_id)
        start = time.perf_counter()
        table = experiment.run()
        elapsed = time.perf_counter() - start
        result = ExperimentResult(experiment=experiment, table=table, wall_time_s=elapsed)
        self.results.append(result)
        return result

    def run_many(self, experiment_ids: Iterable[str]) -> list[ExperimentResult]:
        return [self.run(experiment_id) for experiment_id in experiment_ids]

    def run_all(self) -> list[ExperimentResult]:
        return self.run_many(self.registry.names())
