"""Unit-safe scalar quantities.

The paper mixes ms, s, mJ, J, W and GB freely; internally this library works
in SI base units (seconds, joules, watts, bytes, hertz, degrees Celsius) and
converts only at the presentation layer.  Quantities are thin ``float``
subclasses: they interoperate with numpy and plain arithmetic, but carry a
``unit`` tag and a readable ``repr`` so harness tables stay self-describing.
"""

from __future__ import annotations

MILLI = 1e-3
MICRO = 1e-6
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

KIBI = 1024
MEBI = 1024**2
GIBI = 1024**3


class Quantity(float):
    """A float with a unit label used for presentation only.

    Arithmetic degrades to plain ``float`` (units are documentation, not an
    algebra); this keeps hot paths cheap while making results readable.
    """

    unit: str = ""

    def __repr__(self) -> str:
        return f"{float(self):.6g} {self.unit}".strip()


class Seconds(Quantity):
    """A duration in seconds."""

    unit = "s"

    @classmethod
    def from_ms(cls, value: float) -> "Seconds":
        return cls(value * MILLI)

    @property
    def ms(self) -> float:
        return float(self) / MILLI


class Joules(Quantity):
    """An energy in joules."""

    unit = "J"

    @classmethod
    def from_mj(cls, value: float) -> "Joules":
        return cls(value * MILLI)

    @property
    def mj(self) -> float:
        return float(self) / MILLI


class Watts(Quantity):
    """A power in watts."""

    unit = "W"


class Hertz(Quantity):
    """A frequency in hertz."""

    unit = "Hz"

    @classmethod
    def from_mhz(cls, value: float) -> "Hertz":
        return cls(value * MEGA)

    @classmethod
    def from_ghz(cls, value: float) -> "Hertz":
        return cls(value * GIGA)


class Celsius(Quantity):
    """A temperature in degrees Celsius."""

    unit = "degC"


class Bytes(int):
    """An integer byte count with binary-prefix helpers."""

    @classmethod
    def from_kib(cls, value: float) -> "Bytes":
        return cls(int(value * KIBI))

    @classmethod
    def from_mib(cls, value: float) -> "Bytes":
        return cls(int(value * MEBI))

    @classmethod
    def from_gib(cls, value: float) -> "Bytes":
        return cls(int(value * GIBI))

    def __repr__(self) -> str:
        return format_bytes(int(self))


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with the largest binary prefix that fits."""
    value = float(num_bytes)
    for prefix, scale in (("GiB", GIBI), ("MiB", MEBI), ("KiB", KIBI)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {prefix}"
    return f"{value:.0f} B"


def format_seconds(seconds: float) -> str:
    """Render a duration in the unit the paper's figures use (ms or s)."""
    if seconds < 1.0:
        return f"{seconds / MILLI:.1f} ms"
    return f"{seconds:.2f} s"
