"""Unit-safe scalar quantities.

The paper mixes ms, s, mJ, J, W and GB freely; internally this library works
in SI base units (seconds, joules, watts, bytes, hertz, degrees Celsius) and
converts only at the presentation layer.  Quantities are thin ``float``
subclasses: they interoperate with numpy and plain arithmetic, but carry a
``unit`` tag and a readable ``repr`` so harness tables stay self-describing.

Two mechanisms keep the tags honest without taxing hot paths:

* **Presentation round trips are exact.**  ``Seconds.from_ms(v).ms == v``
  for every float ``v``: the scaled constructors remember the presentation
  value they were built from, so converting back is a lookup, not a second
  floating-point division that could land one ulp off.
* **Dimension-preserving arithmetic keeps the tag; everything else degrades
  to ``float``.**  Negation, ``abs`` and scaling by a plain number cannot
  change a quantity's dimension, so they return the same subclass (a
  ``-Seconds(1.5)`` still reprs as ``-1.5 s``).  Mixing two quantities
  (``Watts * Seconds``) degrades to a plain float — the static units
  checker (:mod:`repro.check.units`), not the runtime, is responsible for
  proving those mixtures dimensionally sound.

The :data:`DIMENSIONS` registry maps each unit tag to its
:class:`~repro.core.dimension.Dim`, which is what the checker propagates.
"""

from __future__ import annotations

from repro.core.dimension import (
    BANDWIDTH,
    BYTES,
    DIMENSIONLESS,
    ENERGY,
    FREQUENCY,
    OPS,
    POWER,
    TEMPERATURE,
    THROUGHPUT,
    TIME,
    Dim,
)

MILLI = 1e-3
MICRO = 1e-6
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

KIBI = 1024
MEBI = 1024**2
GIBI = 1024**3


class Quantity(float):
    """A float with a unit label used for presentation.

    Cross-dimension arithmetic degrades to plain ``float`` (the unit
    *algebra* is enforced statically by ``repro check units``, not at
    runtime); dimension-preserving operations — unary negation/abs and
    scaling by a bare number — keep the subclass so the unit tag survives.
    """

    __slots__ = ("_display",)

    unit: str = ""

    def __repr__(self) -> str:
        return f"{float(self):.6g} {self.unit}".strip()

    # -- exact presentation round trips ---------------------------------
    @classmethod
    def _from_scaled(cls, value: float, scale: float) -> "Quantity":
        """Build from a presentation-scale value, remembering it exactly."""
        quantity = cls(value * scale)
        quantity._display = (scale, float(value))
        return quantity

    def _in_scale(self, scale: float) -> float:
        """Presentation-scale value; exact for the scale we were built at."""
        display = getattr(self, "_display", None)
        if display is not None and display[0] == scale:
            return display[1]
        return float(self) / scale

    # -- dimension-preserving arithmetic --------------------------------
    def __neg__(self) -> "Quantity":
        return type(self)(-float(self))

    def __pos__(self) -> "Quantity":
        return self

    def __abs__(self) -> "Quantity":
        return type(self)(abs(float(self)))

    def _combine(self, other: object, value: float) -> float:
        """Keep the subclass only when ``other`` cannot change the unit."""
        if isinstance(other, Quantity) and other.unit != self.unit:
            return value
        return type(self)(value)

    def __add__(self, other: object) -> float:
        if not isinstance(other, (int, float)):
            return NotImplemented
        return self._combine(other, float(self) + float(other))

    __radd__ = __add__

    def __sub__(self, other: object) -> float:
        if not isinstance(other, (int, float)):
            return NotImplemented
        return self._combine(other, float(self) - float(other))

    def __mul__(self, other: object) -> float:
        if not isinstance(other, (int, float)):
            return NotImplemented
        if isinstance(other, Quantity):
            # quantity x quantity changes the dimension: degrade.
            return float(self) * float(other)
        return type(self)(float(self) * float(other))

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> float:
        if not isinstance(other, (int, float)):
            return NotImplemented
        if isinstance(other, Quantity):
            # same-unit ratios are dimensionless, others change dimension.
            return float(self) / float(other)
        return type(self)(float(self) / float(other))


class Seconds(Quantity):
    """A duration in seconds."""

    __slots__ = ()
    unit = "s"

    @classmethod
    def from_ms(cls, value: float) -> "Seconds":
        return cls._from_scaled(value, MILLI)

    @property
    def ms(self) -> float:
        return self._in_scale(MILLI)


class Joules(Quantity):
    """An energy in joules."""

    __slots__ = ()
    unit = "J"

    @classmethod
    def from_mj(cls, value: float) -> "Joules":
        return cls._from_scaled(value, MILLI)

    @property
    def mj(self) -> float:
        return self._in_scale(MILLI)


class Watts(Quantity):
    """A power in watts."""

    __slots__ = ()
    unit = "W"

    @classmethod
    def from_mw(cls, value: float) -> "Watts":
        return cls._from_scaled(value, MILLI)

    @property
    def mw(self) -> float:
        return self._in_scale(MILLI)


class Hertz(Quantity):
    """A frequency in hertz."""

    __slots__ = ()
    unit = "Hz"

    @classmethod
    def from_mhz(cls, value: float) -> "Hertz":
        return cls._from_scaled(value, MEGA)

    @classmethod
    def from_ghz(cls, value: float) -> "Hertz":
        return cls._from_scaled(value, GIGA)

    @property
    def mhz(self) -> float:
        return self._in_scale(MEGA)

    @property
    def ghz(self) -> float:
        return self._in_scale(GIGA)


class Celsius(Quantity):
    """A temperature in degrees Celsius."""

    __slots__ = ()
    unit = "degC"


class Flops(Quantity):
    """An operation count (the paper counts multiply-accumulates)."""

    __slots__ = ()
    unit = "MAC"

    @classmethod
    def from_gmacs(cls, value: float) -> "Flops":
        return cls._from_scaled(value, GIGA)

    @property
    def gmacs(self) -> float:
        return self._in_scale(GIGA)


class Bytes(int):
    """An integer byte count with binary-prefix helpers."""

    unit = "B"

    @classmethod
    def from_kib(cls, value: float) -> "Bytes":
        return cls(int(value * KIBI))

    @classmethod
    def from_mib(cls, value: float) -> "Bytes":
        return cls(int(value * MEBI))

    @classmethod
    def from_gib(cls, value: float) -> "Bytes":
        return cls(int(value * GIBI))

    def __repr__(self) -> str:
        return format_bytes(int(self))


#: declarative unit-tag -> dimension registry; the source of truth the
#: static units checker anchors on.  Extend it when adding a Quantity
#: subclass or a new derived unit the suffix conventions should know.
DIMENSIONS: dict[str, Dim] = {
    "": DIMENSIONLESS,
    "s": TIME,
    "J": ENERGY,
    "W": POWER,
    "Hz": FREQUENCY,
    "degC": TEMPERATURE,
    "B": BYTES,
    "MAC": OPS,
    "FLOP": OPS,
    "B/s": BANDWIDTH,
    "MAC/s": THROUGHPUT,
}


def dimension_of(quantity: object) -> Dim:
    """Dimension of a quantity instance or class via its ``unit`` tag."""
    unit = getattr(quantity, "unit", None)
    if unit is None or unit not in DIMENSIONS:
        raise KeyError(f"no dimension registered for {quantity!r}")
    return DIMENSIONS[unit]


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with the largest binary prefix that fits."""
    value = float(num_bytes)
    for prefix, scale in (("GiB", GIBI), ("MiB", MEBI), ("KiB", KIBI)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {prefix}"
    return f"{value:.0f} B"


def format_seconds(seconds: float) -> str:
    """Render a duration in the unit the paper's figures use (ms or s)."""
    if seconds < 1.0:
        return f"{seconds / MILLI:.1f} ms"
    return f"{seconds:.2f} s"
