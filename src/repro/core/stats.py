"""Statistics for measurement comparison.

The paper reports point values; a careful reproduction should say how sure
it is.  This module adds bootstrap confidence intervals over timing-loop
samples and a speedup comparison between two measurements — used by the
timer-based harness paths and available to downstream users.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import Measurement


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided bootstrap confidence interval."""

    point: float
    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.low <= self.point <= self.high:
            raise ValueError(
                f"interval [{self.low}, {self.high}] must contain {self.point}")

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (f"{self.point:.6g} [{self.low:.6g}, {self.high:.6g}] "
                f"@{self.confidence:.0%}")


def bootstrap_median(samples: list[float] | np.ndarray, confidence: float = 0.95,
                     n_resamples: int = 2000, seed: int = 0) -> ConfidenceInterval:
    """Bootstrap CI of the median (the paper's summary statistic)."""
    values = np.asarray(samples, dtype=float)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample set")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, values.size, size=(n_resamples, values.size))
    medians = np.median(values[indices], axis=1)
    alpha = (1 - confidence) / 2
    low, high = np.quantile(medians, [alpha, 1 - alpha])
    point = float(np.median(values))
    return ConfidenceInterval(
        point=point,
        low=min(float(low), point),
        high=max(float(high), point),
        confidence=confidence,
    )


@dataclass(frozen=True)
class SpeedupComparison:
    """Ratio of two latency measurements with its bootstrap interval."""

    baseline: Measurement
    candidate: Measurement
    interval: ConfidenceInterval

    @property
    def speedup(self) -> float:
        return self.interval.point

    @property
    def significant(self) -> bool:
        """True when the CI excludes 1.0 (a real win or a real loss)."""
        return not self.interval.contains(1.0)

    def __str__(self) -> str:
        verdict = "significant" if self.significant else "not significant"
        return f"speedup {self.interval} ({verdict})"


def compare_speedup(baseline_samples: list[float] | np.ndarray,
                    candidate_samples: list[float] | np.ndarray,
                    confidence: float = 0.95, n_resamples: int = 2000,
                    seed: int = 0) -> SpeedupComparison:
    """Bootstrap the ratio median(baseline)/median(candidate).

    Speedup > 1 means the candidate is faster.
    """
    base = np.asarray(baseline_samples, dtype=float)
    cand = np.asarray(candidate_samples, dtype=float)
    if base.size == 0 or cand.size == 0:
        raise ValueError("both sample sets must be non-empty")
    if np.any(base <= 0) or np.any(cand <= 0):
        raise ValueError("latency samples must be positive")
    rng = np.random.default_rng(seed)
    base_medians = np.median(
        base[rng.integers(0, base.size, size=(n_resamples, base.size))], axis=1)
    cand_medians = np.median(
        cand[rng.integers(0, cand.size, size=(n_resamples, cand.size))], axis=1)
    ratios = base_medians / cand_medians
    alpha = (1 - confidence) / 2
    low, high = np.quantile(ratios, [alpha, 1 - alpha])
    point = float(np.median(base) / np.median(cand))
    interval = ConfidenceInterval(
        point=point,
        low=min(float(low), point),
        high=max(float(high), point),
        confidence=confidence,
    )
    return SpeedupComparison(
        baseline=Measurement.from_samples(base.tolist(), unit="s"),
        candidate=Measurement.from_samples(cand.tolist(), unit="s"),
        interval=interval,
    )
