"""A tiny dimension algebra for the paper's physical quantities.

Every headline number in the paper is a physical quantity — latencies,
energies per inference, power draws, surface temperatures, byte traffic,
MAC counts.  This module gives those quantities an *algebra*: a
:class:`Dim` is an exponent vector over five base dimensions (time,
energy, temperature, bytes, ops) closed under multiplication, division
and integer powers.  Derived dimensions fall out of the arithmetic the
pipeline actually performs::

    POWER      == ENERGY / TIME          # W  = J / s
    FREQUENCY  == DIMENSIONLESS / TIME   # Hz = 1 / s
    BANDWIDTH  == BYTES / TIME           # B/s
    THROUGHPUT == OPS / TIME             # MAC/s

The runtime never pays for this: quantities stay thin ``float``
subclasses (:mod:`repro.core.quantity`) and arithmetic on them degrades
to plain floats.  The algebra exists so the static units checker
(:mod:`repro.check.units`) can propagate dimensions through the source
at check time and reject a ms-vs-s or energy-vs-power mixup before it
corrupts a table.
"""

from __future__ import annotations

from dataclasses import dataclass

_BASES = ("time", "energy", "temperature", "bytes", "ops")


@dataclass(frozen=True)
class Dim:
    """An exponent vector over the base dimensions.

    ``Dim()`` is dimensionless; ``Dim(time=1)`` is a duration;
    ``Dim(energy=1, time=-1)`` is a power.  Instances are immutable,
    hashable and compare by value, so they work as dict keys in the
    symbol table below.
    """

    time: int = 0
    energy: int = 0
    temperature: int = 0
    bytes: int = 0
    ops: int = 0

    def __mul__(self, other: "Dim") -> "Dim":
        return Dim(**{base: getattr(self, base) + getattr(other, base)
                      for base in _BASES})

    def __truediv__(self, other: "Dim") -> "Dim":
        return Dim(**{base: getattr(self, base) - getattr(other, base)
                      for base in _BASES})

    def __pow__(self, exponent: int) -> "Dim":
        return Dim(**{base: getattr(self, base) * exponent for base in _BASES})

    @property
    def is_dimensionless(self) -> bool:
        return all(getattr(self, base) == 0 for base in _BASES)

    def __str__(self) -> str:
        symbol = SYMBOLS.get(self)
        if symbol is not None:
            return symbol
        terms = [f"{base}^{getattr(self, base)}" for base in _BASES
                 if getattr(self, base) != 0]
        return "*".join(terms) if terms else "1"


DIMENSIONLESS = Dim()
TIME = Dim(time=1)
ENERGY = Dim(energy=1)
TEMPERATURE = Dim(temperature=1)
BYTES = Dim(bytes=1)
OPS = Dim(ops=1)

POWER = ENERGY / TIME
FREQUENCY = DIMENSIONLESS / TIME
BANDWIDTH = BYTES / TIME
THROUGHPUT = OPS / TIME
ENERGY_DELAY = ENERGY * TIME
THERMAL_RESISTANCE = TEMPERATURE / POWER
HEAT_CAPACITY = ENERGY / TEMPERATURE

#: canonical presentation symbol per well-known dimension (for messages).
SYMBOLS: dict[Dim, str] = {
    DIMENSIONLESS: "1",
    TIME: "s",
    ENERGY: "J",
    TEMPERATURE: "degC",
    BYTES: "B",
    OPS: "MAC",
    POWER: "W",
    FREQUENCY: "Hz",
    BANDWIDTH: "B/s",
    THROUGHPUT: "MAC/s",
    ENERGY_DELAY: "J*s",
    THERMAL_RESISTANCE: "degC/W",
    HEAT_CAPACITY: "J/degC",
}
