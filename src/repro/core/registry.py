"""A small name-to-factory registry.

Models, devices, frameworks and experiments are all looked up by the string
names the paper uses ("ResNet-18", "Jetson TX2", "TensorRT", "fig02"), so a
single generic registry keeps those namespaces consistent and gives uniform
error messages with close-match suggestions.
"""

from __future__ import annotations

import difflib
from typing import Callable, Generic, Iterator, TypeVar

from repro.core.errors import UnknownEntryError

T = TypeVar("T")


def canonical_name(name: str) -> str:
    """Normalize a user-facing name to a lookup key.

    Case, spaces, underscores and dashes are ignored so that "ResNet-18",
    "resnet18" and "ResNet_18" all resolve to the same entry.
    """
    return name.lower().replace("-", "").replace("_", "").replace(" ", "")


class Registry(Generic[T]):
    """Maps canonical names to factories producing fresh instances."""

    def __init__(self, kind: str):
        self._kind = kind
        self._factories: dict[str, Callable[[], T]] = {}
        self._display_names: dict[str, str] = {}

    @property
    def kind(self) -> str:
        return self._kind

    def register(self, name: str, factory: Callable[[], T], *, aliases: tuple[str, ...] = ()) -> None:
        """Register ``factory`` under ``name`` and optional aliases."""
        keys = dict.fromkeys(canonical_name(c) for c in (name, *aliases))
        for key in keys:
            if key in self._factories:
                raise ValueError(f"duplicate {self._kind} name: {key!r}")
            self._factories[key] = factory
            self._display_names[key] = name

    def create(self, name: str) -> T:
        """Instantiate the entry registered under ``name``."""
        key = canonical_name(name)
        if key not in self._factories:
            suggestion = self._suggest(key)
            hint = f" (did you mean {suggestion!r}?)" if suggestion else ""
            raise UnknownEntryError(f"unknown {self._kind}: {name!r}{hint}")
        return self._factories[key]()

    def display_name(self, name: str) -> str:
        """Return the primary display name for ``name`` (or any alias)."""
        key = canonical_name(name)
        if key not in self._display_names:
            raise UnknownEntryError(f"unknown {self._kind}: {name!r}")
        return self._display_names[key]

    def names(self) -> list[str]:
        """Primary display names, in registration order, without aliases."""
        seen: list[str] = []
        for display in self._display_names.values():
            if display not in seen:
                seen.append(display)
        return seen

    def __contains__(self, name: str) -> bool:
        return canonical_name(name) in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self.names())

    def _suggest(self, key: str) -> str | None:
        matches = difflib.get_close_matches(key, self._factories.keys(), n=1, cutoff=0.6)
        return self._display_names[matches[0]] if matches else None
