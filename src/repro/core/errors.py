"""Exception hierarchy for the edgebench reproduction.

Every failure mode the paper reports has a dedicated exception so that the
compatibility matrix (Table V) can be reconstructed from the error type:

* :class:`OutOfMemoryError` — the static-graph deployment does not fit in the
  device memory (TensorFlow on Raspberry Pi for AlexNet/VGG16/C3D).
* :class:`ConversionError` — the model cannot be converted for an
  accelerator-specific toolchain (EdgeTPU TFLite compilation barriers).
* :class:`IncompatibleModelError` — base-code incompatibility (SSD on RPi,
  C3D on Movidius).
* :class:`ThermalShutdownError` — the device exceeded its shutdown
  temperature (Raspberry Pi in Figure 14).
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class UnknownEntryError(ReproError, KeyError):
    """A registry lookup failed.

    Inherits from :class:`KeyError` so callers can treat registries like
    mappings, while still being catchable as a :class:`ReproError`.
    """

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable.
        return Exception.__str__(self)


class DeploymentError(ReproError):
    """A model could not be deployed on a (device, framework) pair."""


class OutOfMemoryError(DeploymentError):
    """The execution plan exceeds the device's usable memory."""

    def __init__(self, message: str, required_bytes: int = 0, available_bytes: int = 0):
        super().__init__(message)
        self.required_bytes = required_bytes
        self.available_bytes = available_bytes


class ConversionError(DeploymentError):
    """A toolchain failed to convert/compile the model for the target."""


class IncompatibleModelError(DeploymentError):
    """The model's base code is incompatible with the platform."""


class CompatibilityError(ReproError):
    """A framework is not available on the requested device."""


class ThermalShutdownError(ReproError):
    """The device reached its thermal shutdown temperature."""

    def __init__(self, message: str, temperature_c: float = 0.0):
        super().__init__(message)
        self.temperature_c = temperature_c
