"""Pipeline partitioning across a chain of edge devices.

The authors' collaborative-robots line of work distributes one DNN across
several resource-constrained devices stage-by-stage and streams inputs
through the pipeline.  Steady-state throughput is set by the slowest stage
(compute plus its outgoing transfer), so the partitioner minimizes the
bottleneck over all contiguous stage assignments via dynamic programming.

Since the :class:`~repro.placement.deployment.Deployment` refactor this
module is a *lowering rule*: :func:`lower_pipeline` runs the partitioner
over a chain of scenarios and emits a servable multi-stage Deployment;
:class:`PipelinePlan` remains as its scenario-free projection
(:func:`as_pipeline_plan` recovers the plan from the deployment exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.distribution.network import NetworkLink, resolve_link
from repro.distribution.partition import cut_points
from repro.engine.executor import InferenceSession
from repro.frameworks.base import DeployedModel
from repro.placement.deployment import Deployment, StageSpec

if TYPE_CHECKING:
    from collections.abc import Sequence

    from repro.runtime.runner import Runner
    from repro.runtime.scenario import Scenario


@dataclass(frozen=True)
class PipelineStage:
    """One device's share of the pipeline."""

    device_index: int
    op_names: tuple[str, ...]
    compute_s: float
    outgoing_transfer_s: float

    @property
    def stage_s(self) -> float:
        return self.compute_s + self.outgoing_transfer_s


@dataclass(frozen=True)
class PipelinePlan:
    """A full pipeline assignment."""

    stages: tuple[PipelineStage, ...]

    @property
    def bottleneck_s(self) -> float:
        return max(stage.stage_s for stage in self.stages)

    @property
    def throughput_fps(self) -> float:
        return 1.0 / self.bottleneck_s

    @property
    def pipeline_latency_s(self) -> float:
        """End-to-end latency of one input through all stages."""
        return sum(stage.stage_s for stage in self.stages)

    def describe(self) -> str:
        lines = [f"{len(self.stages)}-stage pipeline: "
                 f"{self.throughput_fps:.2f} inferences/s "
                 f"(bottleneck {self.bottleneck_s * 1e3:.1f} ms, "
                 f"end-to-end {self.pipeline_latency_s * 1e3:.1f} ms)"]
        for stage in self.stages:
            lines.append(
                f"  device {stage.device_index}: {len(stage.op_names)} ops, "
                f"compute {stage.compute_s * 1e3:.1f} ms, "
                f"send {stage.outgoing_transfer_s * 1e3:.1f} ms"
            )
        return "\n".join(lines)


def partition_pipeline_heterogeneous(deployments: list[DeployedModel],
                                     link: NetworkLink) -> PipelinePlan:
    """Pipeline one model across an ORDERED list of different devices.

    Each entry of ``deployments`` is the same source model deployed on the
    device that will run that pipeline position (robot teams are rarely
    uniform).  The DP minimizes the bottleneck stage, where a stage's
    compute time uses its own device's per-op timings.
    """
    if not deployments:
        raise ValueError("need at least one deployment")
    names = {d.graph.name for d in deployments}
    if len(names) != 1:
        raise ValueError(f"all deployments must share one model, got {sorted(names)}")
    num_devices = len(deployments)
    schedulable = [op.name for op in deployments[0].graph.schedulable_ops()]
    for deployed in deployments[1:]:
        other = [op.name for op in deployed.graph.schedulable_ops()]
        if other != schedulable:
            raise ValueError(
                "deployments disagree on the op schedule (mixed frameworks "
                "with different fusion are not pipeline-compatible)")
    n = len(schedulable)
    if num_devices > n:
        raise ValueError(f"cannot spread {n} ops over {num_devices} devices")

    cuts = cut_points(deployments[0].graph)
    transfer_at = [link.transfer_time_s(c.transfer_bytes) for c in cuts]
    prefix_compute = []
    for deployed in deployments:
        # The planner prices caller-supplied deployments, outside the
        # Runner's scenario namespace.
        timings = {
            t.op.name: t.latency_s
            for t in InferenceSession(deployed).plan.timings}  # repro: allow[ARCH001]
        prefix = [0.0] * (n + 1)
        for i, name in enumerate(schedulable):
            prefix[i + 1] = prefix[i] + timings.get(name, 0.0)
        prefix_compute.append(prefix)

    INF = float("inf")
    best = [[INF] * (n + 1) for _ in range(num_devices + 1)]
    choice: list[list[int]] = [[-1] * (n + 1) for _ in range(num_devices + 1)]
    best[0][0] = 0.0
    for d in range(1, num_devices + 1):
        prefix = prefix_compute[d - 1]
        for end in range(d, n + 1):
            for start in range(d - 1, end):
                if best[d - 1][start] == INF:
                    continue
                compute = prefix[end] - prefix[start]
                outgoing = 0.0 if (d == num_devices and end == n) else transfer_at[end]
                candidate = max(best[d - 1][start], compute + outgoing)
                if candidate < best[d][end]:
                    best[d][end] = candidate
                    choice[d][end] = start
    if best[num_devices][n] == INF:
        raise ValueError("no feasible partition found")

    boundaries = [n]
    cursor = n
    for d in range(num_devices, 0, -1):
        cursor = choice[d][cursor]
        boundaries.append(cursor)
    boundaries.reverse()

    stages = []
    for device_index in range(num_devices):
        start, end = boundaries[device_index], boundaries[device_index + 1]
        prefix = prefix_compute[device_index]
        is_last = device_index == num_devices - 1
        stages.append(PipelineStage(
            device_index=device_index,
            op_names=tuple(schedulable[start:end]),
            compute_s=prefix[end] - prefix[start],
            outgoing_transfer_s=0.0 if (is_last and end == n) else transfer_at[end],
        ))
    return PipelinePlan(stages=tuple(stages))


def partition_pipeline(deployed: DeployedModel, num_devices: int,
                       link: NetworkLink) -> PipelinePlan:
    """Minimize the pipeline bottleneck over contiguous stage assignments.

    Dynamic program over (ops consumed, devices used): classic chain
    partitioning, O(N^2 * D) with N schedulable ops.
    """
    if num_devices < 1:
        raise ValueError(f"need at least one device, got {num_devices}")
    # The planner prices a caller-supplied deployment.
    session = InferenceSession(deployed)  # repro: allow[ARCH001]
    timings = {t.op.name: t.latency_s for t in session.plan.timings}
    schedulable = [op.name for op in deployed.graph.schedulable_ops()]
    n = len(schedulable)
    if num_devices > n:
        raise ValueError(f"cannot spread {n} ops over {num_devices} devices")
    cuts = cut_points(deployed.graph)  # index k -> crossing bytes after k ops
    transfer_at = [link.transfer_time_s(c.transfer_bytes) for c in cuts]
    prefix_compute = [0.0] * (n + 1)
    for i, name in enumerate(schedulable):
        prefix_compute[i + 1] = prefix_compute[i] + timings.get(name, 0.0)

    def stage_cost(start: int, end: int, is_last: bool) -> float:
        compute = prefix_compute[end] - prefix_compute[start]
        outgoing = 0.0 if is_last else transfer_at[end]
        return compute + outgoing

    INF = float("inf")
    # best[d][k]: minimal bottleneck covering the first k ops with d devices.
    best = [[INF] * (n + 1) for _ in range(num_devices + 1)]
    choice: list[list[int]] = [[-1] * (n + 1) for _ in range(num_devices + 1)]
    best[0][0] = 0.0
    for d in range(1, num_devices + 1):
        for end in range(d, n + 1):
            is_last_device = d == num_devices
            for start in range(d - 1, end):
                if best[d - 1][start] == INF:
                    continue
                cost = stage_cost(start, end, is_last_device and end == n)
                candidate = max(best[d - 1][start], cost)
                if candidate < best[d][end]:
                    best[d][end] = candidate
                    choice[d][end] = start
    if best[num_devices][n] == INF:
        raise ValueError("no feasible partition found")

    # Reconstruct stage boundaries.
    boundaries = [n]
    cursor = n
    for d in range(num_devices, 0, -1):
        cursor = choice[d][cursor]
        boundaries.append(cursor)
    boundaries.reverse()

    stages = []
    for device_index in range(num_devices):
        start, end = boundaries[device_index], boundaries[device_index + 1]
        is_last = device_index == num_devices - 1
        stages.append(PipelineStage(
            device_index=device_index,
            op_names=tuple(schedulable[start:end]),
            compute_s=prefix_compute[end] - prefix_compute[start],
            outgoing_transfer_s=0.0 if (is_last and end == n) else transfer_at[end],
        ))
    return PipelinePlan(stages=tuple(stages))


# -- lowering to Deployments -------------------------------------------------

def lower_pipeline(scenarios: "Sequence[Scenario]", link: NetworkLink | str, *,
                   runner: "Runner | None" = None) -> Deployment:
    """Lower an ordered chain of scenarios to a pipelined Deployment.

    Runs :func:`partition_pipeline_heterogeneous` over the scenarios'
    engine sessions (one per device position, so heterogeneous chains are
    fine) and attaches the per-device pricing — active power, idle power,
    session init — a served stage needs.  The
    :func:`as_pipeline_plan` projection of the result equals the
    partitioner's plan exactly.
    """
    from repro.distribution.split import _lowered_side

    link = resolve_link(link)
    scenarios = list(scenarios)
    if len(scenarios) < 2:
        raise ValueError("a pipeline needs at least two scenarios")
    if runner is None:
        from repro.runtime.runner import default_runner
        runner = default_runner()
    sessions = [runner.session(scenario) for scenario in scenarios]
    plan = partition_pipeline_heterogeneous(
        [session.deployed for session in sessions], link)
    bytes_at = [cut.transfer_bytes
                for cut in cut_points(sessions[0].deployed.graph)]
    stages = []
    consumed = 0
    last = len(scenarios) - 1
    for position, (scenario, session, stage) in enumerate(
            zip(scenarios, sessions, plan.stages)):
        consumed += len(stage.op_names)
        stages.append(StageSpec(
            scenario=scenario,
            op_names=stage.op_names,
            compute_s=stage.compute_s,
            transfer_s=stage.outgoing_transfer_s,
            transfer_bytes=0 if position == last else bytes_at[consumed],
            **_lowered_side(scenario, session),
        ))
    return Deployment(kind="pipeline", link=link.name, stages=tuple(stages))


def as_pipeline_plan(deployment: Deployment) -> PipelinePlan:
    """Project a pipelined deployment back onto its :class:`PipelinePlan`.

    Inverse of :func:`lower_pipeline`:
    ``as_pipeline_plan(lower_pipeline(chain, link))`` equals the
    partitioner's plan exactly (dataclass equality, zero float tolerance).
    """
    if deployment.kind != "pipeline":
        raise ValueError(
            f"expected a pipeline deployment, got {deployment.kind!r}")
    return PipelinePlan(stages=tuple(
        PipelineStage(device_index=position,
                      op_names=stage.op_names or (),
                      compute_s=stage.compute_s,
                      outgoing_transfer_s=stage.transfer_s)
        for position, stage in enumerate(deployment.stages)))
