"""Distributed edge inference.

The paper's related-work section centers on distributing DNN inference:
Neurosurgeon's cloud-edge split and the authors' own collaborative
model-parallelism across IoT devices/robots.  This package builds that
substrate on the engine: network link models, graph cut-point analysis,
a Neurosurgeon-style split planner, and a pipeline partitioner for chains
of edge devices.
"""

from repro.distribution.network import LINK_PRESETS, NetworkLink, load_link
from repro.distribution.partition import CutPoint, cut_points
from repro.distribution.pipeline import (
    PipelinePlan,
    partition_pipeline,
    partition_pipeline_heterogeneous,
)
from repro.distribution.split import SplitPlan, SplitPlanner

__all__ = [
    "CutPoint",
    "LINK_PRESETS",
    "NetworkLink",
    "PipelinePlan",
    "SplitPlan",
    "SplitPlanner",
    "cut_points",
    "load_link",
    "partition_pipeline",
    "partition_pipeline_heterogeneous",
]
