"""Distributed edge inference.

The paper's related-work section centers on distributing DNN inference:
Neurosurgeon's cloud-edge split and the authors' own collaborative
model-parallelism across IoT devices/robots.  This package builds that
substrate on the engine: network link models, graph cut-point analysis,
a Neurosurgeon-style split planner, and a pipeline partitioner for chains
of edge devices.

The planners double as *lowering rules*: :func:`lower_split` and
:func:`lower_pipeline` emit :class:`~repro.placement.deployment.Deployment`
objects the fleet can price and serve, while :class:`SplitPlan` and
:class:`PipelinePlan` remain as their scenario-free projections
(:func:`as_split_plan` / :func:`as_pipeline_plan`).
"""

from repro.distribution.network import (
    LINK_PRESETS,
    REQUIRED_LINK_PRESETS,
    NetworkLink,
    load_link,
    resolve_link,
)
from repro.distribution.partition import CutPoint, cut_points, narrowest_cut
from repro.distribution.pipeline import (
    PipelinePlan,
    PipelineStage,
    as_pipeline_plan,
    lower_pipeline,
    partition_pipeline,
    partition_pipeline_heterogeneous,
)
from repro.distribution.split import (
    SplitPlan,
    SplitPlanner,
    as_split_plan,
    lower_split,
    split_deployments,
)

__all__ = [
    "CutPoint",
    "LINK_PRESETS",
    "NetworkLink",
    "PipelinePlan",
    "PipelineStage",
    "REQUIRED_LINK_PRESETS",
    "SplitPlan",
    "SplitPlanner",
    "as_pipeline_plan",
    "as_split_plan",
    "cut_points",
    "load_link",
    "lower_pipeline",
    "lower_split",
    "narrowest_cut",
    "partition_pipeline",
    "partition_pipeline_heterogeneous",
    "resolve_link",
    "split_deployments",
]
