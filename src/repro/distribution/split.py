"""Neurosurgeon-style cloud-edge split planning.

For every cut point: run the prefix on the edge device, ship the crossing
activations over the link, run the suffix on the remote platform.  The
planner evaluates all cuts with the engine's per-op timings and returns the
latency-optimal plan, together with the all-edge and all-remote baselines
the paper's offloading discussion contrasts (Section I: privacy, connectivity
and timing constraints are what rule the all-remote point out in practice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.distribution.network import NetworkLink
from repro.distribution.partition import CutPoint, cut_points
from repro.engine.executor import InferenceSession
from repro.frameworks.base import DeployedModel


@dataclass(frozen=True)
class SplitPlan:
    """One evaluated cut."""

    cut: CutPoint
    edge_s: float
    transfer_s: float
    remote_s: float

    @property
    def total_s(self) -> float:
        return self.edge_s + self.transfer_s + self.remote_s

    @property
    def is_all_edge(self) -> bool:
        return math.isclose(self.remote_s, 0.0, abs_tol=1e-15) and self.cut.after_op != ""

    def describe(self) -> str:
        where = f"after {self.cut.after_op!r}" if self.cut.after_op else "at the input"
        return (
            f"cut {where}: edge {self.edge_s * 1e3:.1f} ms + link "
            f"{self.transfer_s * 1e3:.1f} ms + remote {self.remote_s * 1e3:.1f} ms "
            f"= {self.total_s * 1e3:.1f} ms"
        )


class SplitPlanner:
    """Evaluates every cut of a model between two deployments.

    Both deployments must come from the SAME source graph so that op names
    align; the planner times each side with its own engine session and
    prices the link with the crossing-tensor sizes.
    """

    def __init__(self, edge: DeployedModel, remote: DeployedModel, link: NetworkLink):
        if edge.graph.name != remote.graph.name:
            raise ValueError(
                f"split requires one model on both sides, got "
                f"{edge.graph.name!r} vs {remote.graph.name!r}"
            )
        self.edge = edge
        self.remote = remote
        self.link = link
        self._edge_times = self._per_op_times(edge)
        self._remote_times = self._per_op_times(remote)
        self._cuts = cut_points(edge.graph)
        self._plans: list[SplitPlan] | None = None

    def with_link(self, link: NetworkLink) -> SplitPlanner:
        """A planner for the same deployments priced over a different link.

        Shares the per-op timing tables and cut list (the expensive part —
        two engine sessions per planner); only transfer pricing changes.
        """
        other = SplitPlanner.__new__(SplitPlanner)
        other.edge = self.edge
        other.remote = self.remote
        other.link = link
        other._edge_times = self._edge_times
        other._remote_times = self._remote_times
        other._cuts = self._cuts
        other._plans = None
        return other

    @staticmethod
    def _per_op_times(deployed: DeployedModel) -> dict[str, float]:
        # The planner prices caller-supplied deployments (remote platforms
        # outside the Runner's scenario namespace).
        session = InferenceSession(deployed)  # repro: allow[ARCH001]
        times = {t.op.name: t.latency_s for t in session.plan.timings}
        times["__session__"] = (session.plan.session_overhead_s
                                + session.plan.input_transfer_s)
        return times

    def sweep(self) -> list[SplitPlan]:
        """Evaluate every cut point, input-side first.  Plans are memoized;
        repeated calls (``best``/``all_edge``/``all_remote``) reuse them."""
        if self._plans is None:
            self._plans = self._sweep()
        return list(self._plans)

    def _sweep(self) -> list[SplitPlan]:
        schedulable = [op.name for op in self.edge.graph.schedulable_ops()]
        edge_values = [self._edge_times.get(name, 0.0) for name in schedulable]
        remote_values = [self._remote_times.get(name, 0.0) for name in schedulable]
        count = len(schedulable)
        # Running prefix sums accumulate left-to-right — the same float-op
        # order as summing each prefix from scratch, so cuts price
        # bit-identically to the quadratic form this replaces.
        edge_prefix = [0.0]
        acc = 0.0
        for value in edge_values:
            acc += value
            edge_prefix.append(acc)
        plans = []
        for cut in self._cuts:
            index = cut.index
            if count == 0 or index == count:
                # Fully local: the result still returns to the caller on-device.
                transfer = 0.0
            else:
                transfer = self.link.transfer_time_s(cut.transfer_bytes)
            edge_s = (0.0 if index == 0
                      else edge_prefix[index] + self._edge_times["__session__"])
            remote_s = (0.0 if index == count
                        else sum(remote_values[index:])
                        + self._remote_times["__session__"])
            plans.append(SplitPlan(
                cut=cut, edge_s=edge_s, transfer_s=transfer, remote_s=remote_s))
        return plans

    def best(self) -> SplitPlan:
        return min(self.sweep(), key=lambda plan: plan.total_s)

    def all_edge(self) -> SplitPlan:
        return self.sweep()[-1]

    def all_remote(self) -> SplitPlan:
        return self.sweep()[0]

    def offload_speedup(self) -> float:
        """Best split latency improvement over staying fully on the edge."""
        return self.all_edge().total_s / self.best().total_s
