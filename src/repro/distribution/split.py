"""Neurosurgeon-style cloud-edge split planning, lowered to Deployments.

For every cut point: run the prefix on the edge device, ship the crossing
activations over the link, run the suffix on the remote platform.  The
planner evaluates all cuts with the engine's per-op timings and returns the
latency-optimal plan, together with the all-edge and all-remote baselines
the paper's offloading discussion contrasts (Section I: privacy, connectivity
and timing constraints are what rule the all-remote point out in practice).

Since the :class:`~repro.placement.deployment.Deployment` refactor this
module is a *lowering rule*: :func:`lower_split` prices a (edge scenario,
remote scenario, link) triple and emits a servable two-stage Deployment,
and the scenario-free :class:`SplitPlan`/:class:`SplitPlanner` entry
points remain as the per-cut projection of those deployments
(:func:`as_split_plan` recovers the plan from the deployment exactly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.distribution.network import NetworkLink, resolve_link
from repro.distribution.partition import CutPoint, cut_points
from repro.engine.executor import InferenceSession
from repro.frameworks.base import DeployedModel
from repro.placement.deployment import Deployment, StageSpec

if TYPE_CHECKING:
    from repro.runtime.runner import Runner
    from repro.runtime.scenario import Scenario


@dataclass(frozen=True)
class SplitPlan:
    """One evaluated cut."""

    cut: CutPoint
    edge_s: float
    transfer_s: float
    remote_s: float

    @property
    def total_s(self) -> float:
        return self.edge_s + self.transfer_s + self.remote_s

    @property
    def is_all_edge(self) -> bool:
        return math.isclose(self.remote_s, 0.0, abs_tol=1e-15) and self.cut.after_op != ""

    def describe(self) -> str:
        where = f"after {self.cut.after_op!r}" if self.cut.after_op else "at the input"
        return (
            f"cut {where}: edge {self.edge_s * 1e3:.1f} ms + link "
            f"{self.transfer_s * 1e3:.1f} ms + remote {self.remote_s * 1e3:.1f} ms "
            f"= {self.total_s * 1e3:.1f} ms"
        )


class SplitPlanner:
    """Evaluates every cut of a model between two deployments.

    Both deployments must come from the SAME source graph so that op names
    align; the planner times each side with its own engine session and
    prices the link with the crossing-tensor sizes.
    """

    def __init__(self, edge: DeployedModel, remote: DeployedModel, link: NetworkLink):
        if edge.graph.name != remote.graph.name:
            raise ValueError(
                f"split requires one model on both sides, got "
                f"{edge.graph.name!r} vs {remote.graph.name!r}"
            )
        self.edge = edge
        self.remote = remote
        self.link = link
        self._edge_times = self._per_op_times(edge)
        self._remote_times = self._per_op_times(remote)
        self._cuts = cut_points(edge.graph)
        self._plans: list[SplitPlan] | None = None

    def with_link(self, link: NetworkLink) -> SplitPlanner:
        """A planner for the same deployments priced over a different link.

        Shares the per-op timing tables and cut list (the expensive part —
        two engine sessions per planner); only transfer pricing changes.
        """
        other = SplitPlanner.__new__(SplitPlanner)
        other.edge = self.edge
        other.remote = self.remote
        other.link = link
        other._edge_times = self._edge_times
        other._remote_times = self._remote_times
        other._cuts = self._cuts
        other._plans = None
        return other

    @staticmethod
    def _per_op_times(deployed: DeployedModel) -> dict[str, float]:
        # The planner prices caller-supplied deployments (remote platforms
        # outside the Runner's scenario namespace).
        session = InferenceSession(deployed)  # repro: allow[ARCH001]
        times = {t.op.name: t.latency_s for t in session.plan.timings}
        times["__session__"] = (session.plan.session_overhead_s
                                + session.plan.input_transfer_s)
        return times

    def sweep(self) -> list[SplitPlan]:
        """Evaluate every cut point, input-side first.  Plans are memoized;
        repeated calls (``best``/``all_edge``/``all_remote``) reuse them."""
        if self._plans is None:
            self._plans = self._sweep()
        return list(self._plans)

    def _sweep(self) -> list[SplitPlan]:
        schedulable = [op.name for op in self.edge.graph.schedulable_ops()]
        edge_values = [self._edge_times.get(name, 0.0) for name in schedulable]
        remote_values = [self._remote_times.get(name, 0.0) for name in schedulable]
        count = len(schedulable)
        # Running prefix sums accumulate left-to-right — the same float-op
        # order as summing each prefix from scratch, so cuts price
        # bit-identically to the quadratic form this replaces.
        edge_prefix = [0.0]
        acc = 0.0
        for value in edge_values:
            acc += value
            edge_prefix.append(acc)
        plans = []
        for cut in self._cuts:
            index = cut.index
            if count == 0 or index == count:
                # Fully local: the result still returns to the caller on-device.
                transfer = 0.0
            else:
                transfer = self.link.transfer_time_s(cut.transfer_bytes)
            edge_s = (0.0 if index == 0
                      else edge_prefix[index] + self._edge_times["__session__"])
            remote_s = (0.0 if index == count
                        else sum(remote_values[index:])
                        + self._remote_times["__session__"])
            plans.append(SplitPlan(
                cut=cut, edge_s=edge_s, transfer_s=transfer, remote_s=remote_s))
        return plans

    def best(self) -> SplitPlan:
        return min(self.sweep(), key=lambda plan: plan.total_s)

    def all_edge(self) -> SplitPlan:
        return self.sweep()[-1]

    def all_remote(self) -> SplitPlan:
        return self.sweep()[0]

    def offload_speedup(self) -> float:
        """Best split latency improvement over staying fully on the edge."""
        return self.all_edge().total_s / self.best().total_s


# -- lowering to Deployments -------------------------------------------------

def _lowered_side(scenario: Scenario, session) -> dict[str, float]:
    """Per-device pricing a served stage needs beyond its compute time."""
    from repro.hardware.catalog import load_device
    from repro.measurement.energy import active_power_w

    return {
        "power_w": active_power_w(session),
        "idle_w": load_device(scenario.device).power.idle_w,
        "init_time_s": session.init_time_s,
    }


def _split_context(edge: Scenario, remote: Scenario, link: NetworkLink,
                   runner: "Runner | None"):
    """Sessions, sweep and per-side pricing shared by the split lowerings."""
    if runner is None:
        from repro.runtime.runner import default_runner
        runner = default_runner()
    edge_session = runner.session(edge)
    remote_session = runner.session(remote)
    planner = SplitPlanner(edge_session.deployed, remote_session.deployed, link)
    schedulable = tuple(
        op.name for op in edge_session.deployed.graph.schedulable_ops())
    return (planner.sweep(), schedulable,
            _lowered_side(edge, edge_session),
            _lowered_side(remote, remote_session))


def _deployment_from_split(plan: SplitPlan, edge: Scenario, remote: Scenario,
                           schedulable: tuple[str, ...], link: NetworkLink,
                           edge_side: dict[str, float],
                           remote_side: dict[str, float]) -> Deployment:
    index = plan.cut.index
    if index == len(schedulable):
        # All-edge: nothing crosses the link, so this IS a single-node
        # deployment — normalize so the fleet serves it on the legacy path.
        return Deployment.single(edge, compute_s=plan.edge_s, **edge_side)
    head = StageSpec(scenario=edge, op_names=schedulable[:index],
                     compute_s=plan.edge_s, transfer_s=plan.transfer_s,
                     transfer_bytes=plan.cut.transfer_bytes, **edge_side)
    tail = StageSpec(scenario=remote, op_names=schedulable[index:],
                     compute_s=plan.remote_s, **remote_side)
    return Deployment(kind="split", link=link.name, stages=(head, tail))


def lower_split(edge: Scenario, remote: Scenario, link: NetworkLink | str, *,
                cut_index: int | None = None,
                runner: "Runner | None" = None) -> Deployment:
    """Lower one (edge scenario, remote scenario, link) split to a Deployment.

    With ``cut_index`` the plan at that cut is lowered; otherwise the
    latency-optimal cut is chosen (exactly :meth:`SplitPlanner.best`).  The
    all-edge cut normalizes to a single-node deployment; every other cut
    becomes a two-stage ``"split"`` deployment whose
    :func:`as_split_plan` projection equals the planner's plan exactly.
    """
    link = resolve_link(link)
    plans, schedulable, edge_side, remote_side = _split_context(
        edge, remote, link, runner)
    if cut_index is None:
        cut_index = min(range(len(plans)), key=lambda i: plans[i].total_s)
    plan = plans[cut_index]
    return _deployment_from_split(
        plan, edge, remote, schedulable, link, edge_side, remote_side)


def split_deployments(edge: Scenario, remote: Scenario,
                      link: NetworkLink | str, *,
                      runner: "Runner | None" = None) -> list[Deployment]:
    """Lower the FULL cut sweep, input-side cut first.

    One engine session per side prices every cut (the planner's prefix-sum
    sweep), so enumerating all placements of a pair costs no more than
    pricing its best one.
    """
    link = resolve_link(link)
    plans, schedulable, edge_side, remote_side = _split_context(
        edge, remote, link, runner)
    return [_deployment_from_split(plan, edge, remote, schedulable, link,
                                   edge_side, remote_side)
            for plan in plans]


def as_split_plan(deployment: Deployment) -> SplitPlan:
    """Project a two-stage split deployment back onto its :class:`SplitPlan`.

    Inverse of :func:`lower_split` for non-degenerate cuts:
    ``as_split_plan(lower_split(e, r, link, cut_index=k))`` equals
    ``SplitPlanner.sweep()[k]`` exactly (dataclass equality, zero float
    tolerance).  All-edge deployments normalize to single-node and carry no
    cut anymore, so they cannot be projected.
    """
    if deployment.kind != "split" or deployment.num_stages != 2:
        raise ValueError(
            f"expected a two-stage split deployment, got {deployment.kind!r} "
            f"with {deployment.num_stages} stage(s)")
    head, tail = deployment.stages
    ops = head.op_names or ()
    cut = CutPoint(index=len(ops), after_op=ops[-1] if ops else "",
                   transfer_bytes=head.transfer_bytes)
    return SplitPlan(cut=cut, edge_s=head.compute_s,
                     transfer_s=head.transfer_s, remote_s=tail.compute_s)
