"""Graph cut-point analysis.

A *cut point* after position ``k`` in the topological order splits the
graph into a prefix (ops 0..k) and a suffix.  The bytes that must cross a
cut are exactly the outputs of prefix ops still consumed by the suffix —
the live set the memory planner already reasons about.  Residual and
multi-branch networks therefore get honest transfer sizes (a cut inside a
ResNet block ships both the trunk and the shortcut).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs import ops as O
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class CutPoint:
    """One feasible split location.

    Attributes:
        index: number of non-input ops in the prefix (0 = everything
            remote; len(ops) = everything local).
        after_op: name of the last prefix op ("" for index 0).
        transfer_bytes: activation bytes crossing the cut.
    """

    index: int
    after_op: str
    transfer_bytes: int


def cut_points(graph: Graph) -> list[CutPoint]:
    """Every cut location with its crossing-tensor size.

    Position 0 ships the raw input; position N ships the final output
    (which any deployment must return anyway, so it is the graph output
    size).  Fused-away ops cannot host a cut — their output does not
    materialize — so cuts land on schedulable ops only.
    """
    schedulable = graph.schedulable_ops()
    order_index = {id(op): i for i, op in enumerate(schedulable)}

    def position(op: O.Op) -> int:
        """Index (in schedulable order) of the op that materializes
        ``op``'s output; inputs map to -1 (before everything)."""
        anchor = op
        while anchor.fused_into is not None:
            anchor = anchor.fused_into
        if isinstance(anchor, O.Input):
            return -1
        return order_index[id(anchor)]

    consumers: dict[int, list[int]] = {}
    for op in graph.ops:
        consumer_pos = position(op)
        for parent in op.inputs:
            producer_pos = position(parent)
            if producer_pos == consumer_pos:
                continue
            consumers.setdefault(producer_pos, []).append(consumer_pos)

    points: list[CutPoint] = []
    input_bytes = sum(op.output_bytes() for op in graph.inputs)
    points.append(CutPoint(index=0, after_op="", transfer_bytes=input_bytes))
    output_bytes = sum(op.output_bytes() for op in graph.outputs)
    for k in range(1, len(schedulable) + 1):
        # Tensors produced at position < k with a consumer at position >= k.
        crossing = 0
        # Raw inputs consumed beyond the cut also cross it.
        for producer_pos, consumer_positions in consumers.items():
            if producer_pos < k and any(pos >= k for pos in consumer_positions):
                if producer_pos == -1:
                    crossing += input_bytes
                else:
                    crossing += schedulable[producer_pos].output_bytes()
        if k == len(schedulable):
            crossing = output_bytes
        points.append(CutPoint(
            index=k,
            after_op=schedulable[k - 1].name,
            transfer_bytes=crossing,
        ))
    return points


def narrowest_cut(graph: Graph) -> CutPoint:
    """The interior cut with the smallest crossing tensor — the natural
    'compress here' point the split literature looks for."""
    interior = cut_points(graph)[1:-1]
    if not interior:
        raise ValueError(f"graph {graph.name!r} has no interior cut points")
    return min(interior, key=lambda p: p.transfer_bytes)
