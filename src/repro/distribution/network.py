"""Network links between cooperating devices.

Transfer time = latency + payload / effective bandwidth, the same
first-order model the device-local :class:`TransferLink` uses, plus named
presets for the links the distributed-inference literature evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import UnknownEntryError
from repro.core.quantity import MEBI


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point link.

    Attributes:
        name: preset or descriptive name.
        bandwidth_bytes_per_s: sustained goodput.
        latency_s: one-way latency per message.
        reliability: fraction of payloads delivered on the first attempt;
            retransmissions inflate the effective transfer time.
    """

    name: str
    bandwidth_bytes_per_s: float
    latency_s: float
    reliability: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")
        if not 0 < self.reliability <= 1:
            raise ValueError("reliability must be in (0, 1]")

    def transfer_time_s(self, num_bytes: float) -> float:
        """Expected time to deliver ``num_bytes`` (retries amortized)."""
        if num_bytes < 0:
            raise ValueError("cannot transfer a negative payload")
        raw = self.latency_s + num_bytes / self.bandwidth_bytes_per_s
        return raw / self.reliability


LINK_PRESETS: dict[str, NetworkLink] = {
    "wifi": NetworkLink("wifi", bandwidth_bytes_per_s=6.25 * MEBI, latency_s=3e-3),
    "wifi-congested": NetworkLink("wifi-congested", bandwidth_bytes_per_s=1.25 * MEBI,
                                  latency_s=10e-3, reliability=0.9),
    "ethernet": NetworkLink("ethernet", bandwidth_bytes_per_s=117 * MEBI, latency_s=0.3e-3),
    "lan": NetworkLink("lan", bandwidth_bytes_per_s=117 * MEBI, latency_s=0.5e-3),
    "lte": NetworkLink("lte", bandwidth_bytes_per_s=1.5 * MEBI, latency_s=50e-3),
    "5g": NetworkLink("5g", bandwidth_bytes_per_s=31.25 * MEBI, latency_s=12e-3),
    "bluetooth": NetworkLink("bluetooth", bandwidth_bytes_per_s=0.25 * MEBI, latency_s=20e-3),
    "loopback": NetworkLink("loopback", bandwidth_bytes_per_s=4000 * MEBI, latency_s=10e-6),
}

#: presets the distributed-inference literature expects to exist by name;
#: the TAB013 rule (repro.check.tables) enforces their presence and sanity.
REQUIRED_LINK_PRESETS = ("wifi", "lte", "5g", "lan", "loopback")


def load_link(name: str) -> NetworkLink:
    """Look up a link preset by name."""
    try:
        return LINK_PRESETS[name]
    except KeyError:
        options = ", ".join(sorted(LINK_PRESETS))
        raise UnknownEntryError(f"unknown link {name!r}; options: {options}") from None


def resolve_link(link: NetworkLink | str) -> NetworkLink:
    """Accept a link object or a preset name (the lowering-rule calling
    convention)."""
    if isinstance(link, NetworkLink):
        return link
    return load_link(link)
