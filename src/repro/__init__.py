"""edgebench-repro: a full reproduction of "Characterizing the Deployment of
Deep Neural Networks on Commercial Edge Devices" (IISWC 2019).

Public API quick tour::

    from repro import (
        load_model, load_device, load_framework,
        InferenceSession, run_experiment,
    )

    device = load_device("Jetson Nano")
    framework = load_framework("TensorRT")
    deployed = framework.deploy(load_model("ResNet-18"), device)
    session = InferenceSession(deployed)
    print(session.latency_s)            # seconds per single-batch inference

    table = run_experiment("fig07")     # reproduce a paper figure

    # Or describe the run as data and get a structured record back:
    from repro import Runner, Scenario
    record = Runner().run(Scenario("ResNet-18", "Jetson Nano", "TensorRT"))
    print(record.latency_s, record.provenance.deploy_cache)
"""

from repro.core.errors import (
    CompatibilityError,
    ConversionError,
    DeploymentError,
    IncompatibleModelError,
    OutOfMemoryError,
    ReproError,
    ThermalShutdownError,
)
from repro.engine import InferenceSession
from repro.frameworks import FRAMEWORK_REGISTRY, list_frameworks, load_framework
from repro.harness import EXPERIMENT_REGISTRY, list_experiments, render_table, run_experiment
from repro.hardware import DEVICE_REGISTRY, list_devices, load_device
from repro.models import MODEL_REGISTRY, list_models, load_model
from repro.runtime import RunRecord, Runner, Scenario, default_runner

__version__ = "1.0.0"

__all__ = [
    "CompatibilityError",
    "ConversionError",
    "DEVICE_REGISTRY",
    "DeploymentError",
    "EXPERIMENT_REGISTRY",
    "FRAMEWORK_REGISTRY",
    "IncompatibleModelError",
    "InferenceSession",
    "MODEL_REGISTRY",
    "OutOfMemoryError",
    "ReproError",
    "RunRecord",
    "Runner",
    "Scenario",
    "ThermalShutdownError",
    "__version__",
    "list_devices",
    "list_experiments",
    "list_frameworks",
    "list_models",
    "load_device",
    "load_framework",
    "load_model",
    "default_runner",
    "render_table",
    "run_experiment",
]
