"""The device catalog: the ten platforms of Table III.

Microarchitectural peaks come from public specifications (cores x clock x
MACs/cycle); power models are calibrated so idle and under-load draw match
Table III's measured watts; thermal RC parameters are calibrated against
Table VI idle temperatures and Figure 14's qualitative behaviour (TX2/Nano
fan activation, Raspberry Pi thermal shutdown, Movidius's flat profile).
"""

from __future__ import annotations

from repro.core.quantity import GIBI, GIGA, KIBI, MEBI
from repro.core.registry import Registry
from repro.graphs.tensor import DType
from repro.hardware.compute import ComputeKind, ComputeUnit, cpu_unit, gpu_unit
from repro.hardware.device import Device, DeviceCategory, TransferLink
from repro.hardware.memory import MemorySpec
from repro.hardware.power import PowerModel
from repro.hardware.thermal import ThermalSpec

# Utilization the engine reaches under sustained single-batch inference;
# used to map Table III's measured average power onto the linear model.
_EDGE_INFERENCE_UTILIZATION = 0.85


def _power(idle_w: float, average_w: float, utilization: float = _EDGE_INFERENCE_UTILIZATION) -> PowerModel:
    """Build a PowerModel whose draw at ``utilization`` equals ``average_w``."""
    active_w = idle_w + (average_w - idle_w) / utilization
    return PowerModel(idle_w=idle_w, active_w=active_w)


def raspberry_pi_3b() -> Device:
    return Device(
        name="Raspberry Pi 3B",
        category=DeviceCategory.EDGE_CPU,
        compute_units=(
            cpu_unit("4-core Cortex-A53 @ 1.2 GHz", cores=4, clock_hz=1.2 * GIGA,
                     macs_per_cycle_per_core=2.0),
        ),
        memory=MemorySpec(
            capacity_bytes=1 * GIBI,
            bandwidth_bytes_per_s=2.0 * GIGA,
            technology="LPDDR2",
            usable_fraction=0.6,  # Raspbian + framework runtime overhead
            storage_bandwidth_bytes_per_s=80 * MEBI,  # SD card
        ),
        power=_power(1.33, 2.73),
        thermal=ThermalSpec(
            r_passive_c_per_w=17.5,
            r_active_c_per_w=17.5,
            c_j_per_c=7.0,
            has_heatsink=False,
            has_fan=False,
            heatsink_mm="14x14 (bare SoC)",
            shutdown_c=68.0,
            surface_offset_c=2.0,
        ),
        supported_frameworks=(),  # runs every framework in the study
        inference_utilization=_EDGE_INFERENCE_UTILIZATION,
    )


def jetson_tx2() -> Device:
    return Device(
        name="Jetson TX2",
        category=DeviceCategory.EDGE_GPU,
        compute_units=(
            gpu_unit("256-core Pascal @ 1.3 GHz", cuda_cores=256, clock_hz=1.3 * GIGA,
                     fp16_ratio=2.0),
            cpu_unit("4-core Cortex-A57 + 2-core Denver2 @ 2 GHz", cores=6,
                     clock_hz=2.0 * GIGA, macs_per_cycle_per_core=2.0),
        ),
        memory=MemorySpec(
            capacity_bytes=8 * GIBI,
            bandwidth_bytes_per_s=35.0 * GIGA,
            technology="LPDDR4 (128-bit, CPU/GPU shared)",
            shared_with_host=True,
            usable_fraction=0.85,
        ),
        power=_power(1.90, 9.65),
        thermal=ThermalSpec(
            r_passive_c_per_w=9.7,
            r_active_c_per_w=3.7,
            c_j_per_c=60.0,
            has_heatsink=True,
            has_fan=True,
            heatsink_mm="80x55x20",
            fan_trigger_c=50.0,
            fan_stop_c=42.0,
            surface_offset_c=8.0,
        ),
        inference_utilization=_EDGE_INFERENCE_UTILIZATION,
    )


def jetson_nano() -> Device:
    return Device(
        name="Jetson Nano",
        category=DeviceCategory.EDGE_GPU,
        compute_units=(
            gpu_unit("128-core Maxwell @ 921 MHz", cuda_cores=128, clock_hz=0.921 * GIGA,
                     fp16_ratio=2.0),
            cpu_unit("4-core Cortex-A57 @ 1.43 GHz", cores=4, clock_hz=1.43 * GIGA,
                     macs_per_cycle_per_core=2.0),
        ),
        memory=MemorySpec(
            capacity_bytes=4 * GIBI,
            bandwidth_bytes_per_s=16.0 * GIGA,
            technology="LPDDR4 (64-bit, CPU/GPU shared)",
            shared_with_host=True,
            usable_fraction=0.8,
        ),
        power=_power(1.25, 4.58),
        thermal=ThermalSpec(
            r_passive_c_per_w=16.2,
            r_active_c_per_w=8.3,
            c_j_per_c=30.0,
            has_heatsink=True,
            has_fan=True,
            heatsink_mm="59x39x17",
            fan_trigger_c=55.0,
            fan_stop_c=45.0,
            surface_offset_c=7.0,
        ),
        inference_utilization=_EDGE_INFERENCE_UTILIZATION,
    )


def edgetpu() -> Device:
    return Device(
        name="EdgeTPU",
        category=DeviceCategory.EDGE_ACCELERATOR,
        compute_units=(
            ComputeUnit(
                name="EdgeTPU systolic array (4 TOPS INT8)",
                kind=ComputeKind.ASIC,
                peak_macs_per_s={DType.INT8: 2000 * GIGA},  # 4 TOPS = 2 TMAC/s
                dispatch_overhead_s=2e-6,  # fused pipeline, near-zero launches
                on_chip_buffer_bytes=8 * MEBI,
            ),
            cpu_unit("4-core Cortex-A53 + Cortex-M4 @ 1.5 GHz (host)", cores=4,
                     clock_hz=1.5 * GIGA, macs_per_cycle_per_core=2.0),
        ),
        memory=MemorySpec(
            capacity_bytes=1 * GIBI,
            bandwidth_bytes_per_s=3.2 * GIGA,
            technology="LPDDR4",
            usable_fraction=0.7,
        ),
        power=_power(3.24, 4.14),
        thermal=ThermalSpec(
            r_passive_c_per_w=5.5,
            r_active_c_per_w=5.5,
            c_j_per_c=25.0,
            has_heatsink=True,
            has_fan=False,
            heatsink_mm="44x40x9",
            surface_offset_c=6.0,
        ),
        supported_frameworks=("TFLite",),
        inference_utilization=_EDGE_INFERENCE_UTILIZATION,
    )


def movidius_ncs() -> Device:
    return Device(
        name="Movidius NCS",
        category=DeviceCategory.EDGE_ACCELERATOR,
        compute_units=(
            ComputeUnit(
                name="Myriad 2 VPU (12 SHAVE cores)",
                kind=ComputeKind.VPU,
                peak_macs_per_s={
                    DType.FP16: 100 * GIGA,
                    DType.FP32: 50 * GIGA,
                    DType.INT8: 150 * GIGA,
                },
                dispatch_overhead_s=5e-6,
                on_chip_buffer_bytes=2 * MEBI,  # CMX scratchpad
            ),
        ),
        memory=MemorySpec(
            capacity_bytes=512 * MEBI,
            bandwidth_bytes_per_s=2.0 * GIGA,
            technology="LPDDR3 (on-stick)",
            shared_with_host=False,
            usable_fraction=0.9,
        ),
        power=_power(0.36, 1.52),
        # The stick enclosure is an efficient heatsink: the smallest thermal
        # resistance in the study, producing the flattest Figure 14 curve.
        # Trade-off: the modelled idle surface reads ~3 degC below Table
        # VI's 25.8 (see EXPERIMENTS.md).
        thermal=ThermalSpec(
            r_passive_c_per_w=1.8,
            r_active_c_per_w=1.8,
            c_j_per_c=6.0,
            has_heatsink=True,
            has_fan=False,
            heatsink_mm="60x27x14 (enclosure)",
            surface_offset_c=0.0,
        ),
        transfer=TransferLink("USB 3.0", bandwidth_bytes_per_s=350 * MEBI, latency_s=1e-3),
        supported_frameworks=("NCSDK",),
        inference_utilization=_EDGE_INFERENCE_UTILIZATION,
    )


def pynq_z1() -> Device:
    return Device(
        name="PYNQ-Z1",
        category=DeviceCategory.FPGA,
        compute_units=(
            ComputeUnit(
                name="ZYNQ XC7Z020 fabric (VTA GEMM / FINN dataflow)",
                kind=ComputeKind.FPGA,
                peak_macs_per_s={
                    DType.INT8: 36 * GIGA,  # VTA 16x16 GEMM @ ~140 MHz
                    DType.BINARY: 400 * GIGA,  # FINN binarized dataflow
                },
                dispatch_overhead_s=50e-6,  # overlay invocation via PYNQ runtime
                on_chip_buffer_bytes=630 * KIBI,  # BRAM
            ),
            cpu_unit("2-core Cortex-A9 @ 650 MHz", cores=2, clock_hz=0.65 * GIGA,
                     macs_per_cycle_per_core=1.0),
        ),
        memory=MemorySpec(
            capacity_bytes=512 * MEBI,
            bandwidth_bytes_per_s=2.1 * GIGA,
            technology="DDR3 (16-bit) + 630 KB BRAM",
            usable_fraction=0.6,
        ),
        power=_power(2.65, 5.24),
        thermal=ThermalSpec(
            r_passive_c_per_w=8.0,
            r_active_c_per_w=8.0,
            c_j_per_c=20.0,
            has_heatsink=True,
            has_fan=False,
            heatsink_mm="30x30x10",
            surface_offset_c=5.0,
        ),
        supported_frameworks=("TVM VTA", "FINN"),
        inference_utilization=_EDGE_INFERENCE_UTILIZATION,
    )


def xeon_e5_2696() -> Device:
    return Device(
        name="Xeon E5-2696 v4",
        category=DeviceCategory.HPC_CPU,
        compute_units=(
            cpu_unit("2x 22-core E5-2696 v4 @ 2.2 GHz (AVX2)", cores=44,
                     clock_hz=2.2 * GIGA, macs_per_cycle_per_core=16.0,
                     dispatch_overhead_s=2e-6),
        ),
        memory=MemorySpec(
            capacity_bytes=264 * GIBI,
            bandwidth_bytes_per_s=70.0 * GIGA,
            technology="DDR4 (quad-channel x2)",
            usable_fraction=0.95,
        ),
        power=_power(70.0, 300.0),
        inference_utilization=_EDGE_INFERENCE_UTILIZATION,
    )


def gtx_titan_x() -> Device:
    return Device(
        name="GTX Titan X",
        category=DeviceCategory.HPC_GPU,
        compute_units=(
            gpu_unit("3072-core Maxwell @ 1.0 GHz", cuda_cores=3072, clock_hz=1.0 * GIGA),
        ),
        memory=MemorySpec(
            capacity_bytes=12 * GIBI,
            bandwidth_bytes_per_s=336.0 * GIGA,
            technology="GDDR5",
            shared_with_host=False,
            usable_fraction=0.95,
        ),
        power=_power(15.0, 100.0),
        transfer=TransferLink("PCIe 3.0 x16", bandwidth_bytes_per_s=12 * GIBI, latency_s=10e-6),
        inference_utilization=_EDGE_INFERENCE_UTILIZATION,
    )


def titan_xp() -> Device:
    return Device(
        name="Titan Xp",
        category=DeviceCategory.HPC_GPU,
        compute_units=(
            gpu_unit("3840-core Pascal @ 1.58 GHz", cuda_cores=3840, clock_hz=1.58 * GIGA,
                     int8_ratio=4.0),
        ),
        memory=MemorySpec(
            capacity_bytes=12 * GIBI,
            bandwidth_bytes_per_s=547.0 * GIGA,
            technology="GDDR5X",
            shared_with_host=False,
            usable_fraction=0.95,
        ),
        power=_power(55.0, 120.0),
        transfer=TransferLink("PCIe 3.0 x16", bandwidth_bytes_per_s=12 * GIBI, latency_s=10e-6),
        inference_utilization=_EDGE_INFERENCE_UTILIZATION,
    )


def rtx_2080() -> Device:
    return Device(
        name="RTX 2080",
        category=DeviceCategory.HPC_GPU,
        compute_units=(
            gpu_unit("2944-core Turing @ 1.71 GHz", cuda_cores=2944, clock_hz=1.71 * GIGA,
                     fp16_ratio=8.0, int8_ratio=16.0),  # tensor cores
        ),
        memory=MemorySpec(
            capacity_bytes=8 * GIBI,
            bandwidth_bytes_per_s=448.0 * GIGA,
            technology="GDDR6",
            shared_with_host=False,
            usable_fraction=0.95,
        ),
        power=_power(39.0, 150.0),
        transfer=TransferLink("PCIe 3.0 x16", bandwidth_bytes_per_s=12 * GIBI, latency_s=10e-6),
        inference_utilization=_EDGE_INFERENCE_UTILIZATION,
    )


DEVICE_REGISTRY: Registry[Device] = Registry("device")
for _factory, _aliases in (
    (raspberry_pi_3b, ("RPi", "RPi3", "raspberrypi")),
    (jetson_tx2, ("TX2",)),
    (jetson_nano, ("Nano",)),
    (edgetpu, ("Edge TPU", "Google EdgeTPU")),
    (movidius_ncs, ("Movidius", "NCS", "Movidius Stick")),
    (pynq_z1, ("PYNQ",)),
    (xeon_e5_2696, ("Xeon", "Xeon CPU")),
    (gtx_titan_x, ("GTX",)),
    (titan_xp, ("T-XP",)),
    (rtx_2080, ("2080",)),
):
    DEVICE_REGISTRY.register(_factory().name, _factory, aliases=_aliases)


def load_device(name: str) -> Device:
    """Instantiate the named Table III platform."""
    return DEVICE_REGISTRY.create(name)


def list_devices() -> list[str]:
    """Display names of every Table III platform."""
    return DEVICE_REGISTRY.names()
