"""Device operating points (DVFS power modes).

The Jetson boards ship user-selectable power modes — TX2's Max-N/Max-Q,
Nano's 10 W/5 W — that trade clock speed for power.  The paper measures the
default modes; this module lets every experiment re-run under the others,
scaling compute peaks with the clock and the dynamic power with the mode's
budget.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.errors import UnknownEntryError
from repro.hardware.compute import ComputeUnit
from repro.hardware.device import Device
from repro.hardware.power import PowerModel


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS mode.

    Attributes:
        name: mode name as the vendor spells it.
        clock_scale: multiplier on every compute unit's clock (and thus
            peak MAC rates); dispatch latencies stretch inversely.
        dynamic_power_scale: multiplier on the device's dynamic (active
            minus idle) power: roughly clock x voltage^2.
    """

    name: str
    clock_scale: float
    dynamic_power_scale: float

    def __post_init__(self) -> None:
        if not 0 < self.clock_scale <= 1.5:
            raise ValueError("clock_scale must be in (0, 1.5]")
        if not 0 < self.dynamic_power_scale <= 1.5:
            raise ValueError("dynamic_power_scale must be in (0, 1.5]")


# Vendor-documented modes per device (default mode first).
OPERATING_POINTS: dict[str, tuple[OperatingPoint, ...]] = {
    "Jetson TX2": (
        OperatingPoint("Max-N", 1.0, 1.0),
        OperatingPoint("Max-Q", 0.70, 0.55),  # 7.5 W budget mode
    ),
    "Jetson Nano": (
        OperatingPoint("10W", 1.0, 1.0),
        OperatingPoint("5W", 0.59, 0.48),  # 2-core 5 W budget mode
    ),
}


def list_operating_points(device_name: str) -> tuple[OperatingPoint, ...]:
    """Modes documented for ``device_name`` (default-only when unlisted)."""
    return OPERATING_POINTS.get(device_name, (OperatingPoint("default", 1.0, 1.0),))


def apply_operating_point(device: Device, point: OperatingPoint | str) -> Device:
    """A copy of ``device`` running in the given mode.

    The device keeps its name (so anchor calibration still applies — the
    mode scales physics, not kernels) and records the mode in
    ``operating_point``.
    """
    if isinstance(point, str):
        matches = [p for p in list_operating_points(device.name)
                   if p.name.lower() == point.lower()]
        if not matches:
            options = ", ".join(p.name for p in list_operating_points(device.name))
            raise UnknownEntryError(
                f"unknown operating point {point!r} for {device.name}; "
                f"options: {options}")
        point = matches[0]
    scaled_units = tuple(_scale_unit(unit, point.clock_scale)
                         for unit in device.compute_units)
    power = PowerModel(
        idle_w=device.power.idle_w,
        active_w=device.power.idle_w
        + device.power.dynamic_range_w * point.dynamic_power_scale,
    )
    return dataclasses.replace(
        device,
        compute_units=scaled_units,
        power=power,
        operating_point=point.name,
    )


def _scale_unit(unit: ComputeUnit, clock_scale: float) -> ComputeUnit:
    return dataclasses.replace(
        unit,
        peak_macs_per_s={dtype: peak * clock_scale
                         for dtype, peak in unit.peak_macs_per_s.items()},
        dispatch_overhead_s=unit.dispatch_overhead_s / clock_scale,
    )
