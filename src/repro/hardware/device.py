"""The device abstraction tying compute, memory, power and thermal together."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.compute import ComputeKind, ComputeUnit
from repro.hardware.memory import MemorySpec
from repro.hardware.power import PowerModel
from repro.hardware.thermal import ThermalSimulator, ThermalSpec


class DeviceCategory(enum.Enum):
    """Table III's column groups."""

    EDGE_CPU = "IoT/Edge device"
    EDGE_GPU = "GPU-based edge device"
    EDGE_ACCELERATOR = "Custom-ASIC edge accelerator"
    FPGA = "FPGA-based"
    HPC_CPU = "HPC CPU"
    HPC_GPU = "HPC GPU"

    @property
    def is_edge(self) -> bool:
        return self in (
            DeviceCategory.EDGE_CPU,
            DeviceCategory.EDGE_GPU,
            DeviceCategory.EDGE_ACCELERATOR,
            DeviceCategory.FPGA,
        )


@dataclass(frozen=True)
class TransferLink:
    """Host-to-accelerator link (USB for NCS, PCIe for discrete HPC GPUs).

    Jetson boards share DRAM between CPU and GPU (Section IV-2), so they
    carry no link at all — a structural advantage the paper calls out.
    """

    name: str
    bandwidth_bytes_per_s: float
    latency_s: float

    def transfer_time_s(self, num_bytes: float) -> float:
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class Device:
    """A hardware platform from Table III."""

    name: str
    category: DeviceCategory
    compute_units: tuple[ComputeUnit, ...]
    memory: MemorySpec
    power: PowerModel
    thermal: ThermalSpec | None = None
    transfer: TransferLink | None = None
    supported_frameworks: tuple[str, ...] = ()
    # Typical compute utilization while running DNN inference; maps the
    # PowerModel onto Table III's measured "Average Power".
    inference_utilization: float = 1.0
    # Active DVFS mode (see repro.hardware.operating_points).
    operating_point: str = "default"

    def unit(self, kind: ComputeKind) -> ComputeUnit:
        """The first compute unit of the requested kind."""
        for candidate in self.compute_units:
            if candidate.kind == kind:
                return candidate
        raise ValueError(f"{self.name} has no {kind.value} compute unit")

    def has_unit(self, kind: ComputeKind) -> bool:
        return any(candidate.kind == kind for candidate in self.compute_units)

    @property
    def primary_unit(self) -> ComputeUnit:
        """The unit DNN frameworks target by preference: accelerator, then
        GPU, then CPU — the paper's per-device best configuration."""
        for kind in (ComputeKind.ASIC, ComputeKind.VPU, ComputeKind.FPGA,
                     ComputeKind.GPU, ComputeKind.CPU):
            if self.has_unit(kind):
                return self.unit(kind)
        raise ValueError(f"{self.name} has no compute units")

    def supports_framework(self, framework_name: str) -> bool:
        if not self.supported_frameworks:
            return True
        normalized = framework_name.lower()
        return any(normalized == entry.lower() for entry in self.supported_frameworks)

    def average_power_w(self) -> float:
        """Power draw under DNN load (reproduces Table III's column)."""
        return self.power.power(self.inference_utilization)

    def thermal_simulator(self, ambient_c: float | None = None) -> ThermalSimulator:
        if self.thermal is None:
            raise ValueError(f"{self.name} has no thermal model (HPC platform)")
        if ambient_c is None:
            return ThermalSimulator(self.thermal)
        return ThermalSimulator(self.thermal, ambient_c=ambient_c)

    def __repr__(self) -> str:
        return f"Device({self.name!r}, {self.category.name})"
