"""Compute-unit models.

A :class:`ComputeUnit` abstracts a CPU cluster, a GPU, or a fixed-function
accelerator as peak multiply-accumulate throughput per datatype.  Peaks are
derived from public microarchitecture data (cores x clock x MACs/cycle);
what fraction of peak a real framework kernel achieves is a *framework*
property resolved by the execution engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.graphs.tensor import DType


class ComputeKind(enum.Enum):
    """Microarchitecture classes a device may carry."""

    CPU = "cpu"
    GPU = "gpu"
    ASIC = "asic"  # EdgeTPU-style systolic array
    VPU = "vpu"  # Movidius SHAVE vector cores
    FPGA = "fpga"  # PYNQ programmable fabric


@dataclass(frozen=True)
class ComputeUnit:
    """One schedulable compute resource of a device.

    Attributes:
        name: human-readable descriptor ("4-core Cortex-A53 @ 1.2 GHz").
        kind: the microarchitecture class.
        peak_macs_per_s: peak MAC throughput per supported datatype; absence
            of a datatype means the unit cannot execute it natively.
        dispatch_overhead_s: fixed cost to launch one kernel on this unit
            (syscall/driver/launch latency) — the constant the paper's
            framework-overhead observations hinge on.
        on_chip_buffer_bytes: scratchpad/L2 capacity available for weight
            reuse; models that fit enjoy on-chip bandwidth (EdgeTPU, VTA).
    """

    name: str
    kind: ComputeKind
    peak_macs_per_s: dict[DType, float]
    dispatch_overhead_s: float = 10e-6
    on_chip_buffer_bytes: int = 0
    cores: int = 1

    @property
    def per_core_macs_per_s(self) -> float:
        """FP32 MAC/s of one core — the scalar-speed proxy used to scale
        framework bookkeeping costs to slow edge CPUs."""
        return self.peak_macs_per_s.get(DType.FP32, 0.0) / max(1, self.cores)

    def supports(self, dtype: DType) -> bool:
        return dtype in self.peak_macs_per_s

    def peak(self, dtype: DType) -> float:
        """Peak MAC/s at ``dtype``; raises for unsupported datatypes."""
        if dtype not in self.peak_macs_per_s:
            raise ValueError(f"{self.name} does not support {dtype.value}")
        return self.peak_macs_per_s[dtype]

    def best_dtype(self, allowed: tuple[DType, ...]) -> DType:
        """The fastest supported datatype among ``allowed``."""
        usable = [d for d in allowed if self.supports(d)]
        if not usable:
            raise ValueError(f"{self.name} supports none of {[d.value for d in allowed]}")
        return max(usable, key=self.peak_macs_per_s.__getitem__)


def cpu_unit(
    name: str,
    cores: int,
    clock_hz: float,
    macs_per_cycle_per_core: float,
    fp16_ratio: float = 1.0,
    int8_ratio: float = 1.0,
    dispatch_overhead_s: float = 5e-6,
) -> ComputeUnit:
    """Build a CPU compute unit from core count, clock and SIMD width.

    ``fp16_ratio``/``int8_ratio`` scale fp32 throughput; 1.0 means the ISA
    provides no speedup for narrow types (e.g. Cortex-A53 NEON executes
    INT8 at FP32 rate — the reason TFLite's INT8 kernels buy little on the
    Raspberry Pi, Section VI-B2).
    """
    fp32 = cores * clock_hz * macs_per_cycle_per_core
    return ComputeUnit(
        name=name,
        kind=ComputeKind.CPU,
        peak_macs_per_s={
            DType.FP32: fp32,
            DType.FP16: fp32 * fp16_ratio,
            DType.INT8: fp32 * int8_ratio,
        },
        dispatch_overhead_s=dispatch_overhead_s,
        cores=cores,
    )


def gpu_unit(
    name: str,
    cuda_cores: int,
    clock_hz: float,
    fp16_ratio: float = 1.0,
    int8_ratio: float = 1.0,
    dispatch_overhead_s: float = 20e-6,
) -> ComputeUnit:
    """Build a GPU compute unit: one FMA (one MAC) per CUDA core per cycle."""
    fp32 = cuda_cores * clock_hz
    return ComputeUnit(
        name=name,
        kind=ComputeKind.GPU,
        peak_macs_per_s={
            DType.FP32: fp32,
            DType.FP16: fp32 * fp16_ratio,
            DType.INT8: fp32 * int8_ratio,
        },
        dispatch_overhead_s=dispatch_overhead_s,
        cores=cuda_cores,
    )
