"""Memory system model.

Capacity gates deployment (Table V's dynamic-graph fallbacks and memory
errors); bandwidth feeds the roofline's memory term.  ``usable_fraction``
accounts for the OS/runtime share on single-board computers — the 1 GB
Raspberry Pi does not have 1 GB for tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantity import GIBI, MEBI


@dataclass(frozen=True)
class MemorySpec:
    """Main memory visible to the DNN execution.

    Attributes:
        capacity_bytes: physical capacity.
        bandwidth_bytes_per_s: sustained stream bandwidth.
        technology: marketing name (LPDDR2, GDDR6, BRAM+DDR3, ...).
        shared_with_host: True when CPU and accelerator share DRAM with no
            PCIe copy (Jetson family, Section IV-2).
        usable_fraction: fraction of capacity available to the inference
            process after OS / runtime overheads.
        storage_bandwidth_bytes_per_s: backing-store stream rate (SD card,
            SSD) used when a dynamic-graph run pages weights.
    """

    capacity_bytes: int
    bandwidth_bytes_per_s: float
    technology: str = "DRAM"
    shared_with_host: bool = True
    usable_fraction: float = 0.8
    storage_bandwidth_bytes_per_s: float = 80 * MEBI

    @property
    def usable_bytes(self) -> int:
        return int(self.capacity_bytes * self.usable_fraction)

    def fits(self, footprint_bytes: int) -> bool:
        return footprint_bytes <= self.usable_bytes

    def describe(self) -> str:
        return f"{self.capacity_bytes / GIBI:.1f} GiB {self.technology}"
