"""Lumped-RC thermal model with cooling hardware (Table VI, Figure 14).

Each device is a single thermal mass: heat capacity ``c_j_per_c`` charged by
the power draw, discharging to ambient through a thermal resistance.  A fan
(when present) switches the resistance between passive and active values
with hysteresis; devices without sufficient cooling can cross their
shutdown threshold — the Raspberry Pi's fate in Figure 14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.quantity import Celsius

DEFAULT_AMBIENT_C = 22.0


@dataclass(frozen=True)
class ThermalSpec:
    """Thermal parameters of one device.

    Attributes:
        r_passive_c_per_w: junction-to-ambient resistance, fan off.
        r_active_c_per_w: resistance with the fan spinning (= passive when
            no fan is present).
        c_j_per_c: lumped heat capacity.
        has_heatsink / has_fan / heatsink_mm: Table VI cooling inventory.
        fan_trigger_c: junction temperature that starts the fan.
        fan_stop_c: temperature below which the fan stops (hysteresis).
        shutdown_c: junction temperature that trips a thermal shutdown, or
            ``None`` for devices that never trip.
        throttle_c: junction temperature at which firmware DVFS reduces the
            clock, or ``None`` for devices without a soft limit.
        throttle_stop_c: temperature below which the clock is restored.
        throttle_clock_factor: clock multiplier while throttled (< 1).
        surface_offset_c: how much cooler the camera-visible surface is than
            the junction (5-10 degC through a heatsink, Section V).
    """

    r_passive_c_per_w: float
    r_active_c_per_w: float
    c_j_per_c: float
    has_heatsink: bool = True
    has_fan: bool = False
    heatsink_mm: str = ""
    fan_trigger_c: float = 60.0
    fan_stop_c: float = 50.0
    shutdown_c: float | None = None
    throttle_c: float | None = None
    throttle_stop_c: float | None = None
    throttle_clock_factor: float = 0.6
    surface_offset_c: float = 6.0

    def __post_init__(self) -> None:
        if self.r_active_c_per_w > self.r_passive_c_per_w:
            raise ValueError("fan-on resistance cannot exceed passive resistance")
        if self.has_fan and self.fan_stop_c >= self.fan_trigger_c:
            raise ValueError("fan hysteresis requires fan_stop_c < fan_trigger_c")
        if self.throttle_c is not None:
            if not 0 < self.throttle_clock_factor < 1:
                raise ValueError("throttle_clock_factor must be in (0, 1)")
            if self.throttle_stop_c is not None and self.throttle_stop_c >= self.throttle_c:
                raise ValueError("throttle hysteresis requires throttle_stop_c < throttle_c")

    def steady_state_c(self, power_w: float, ambient_c: float = DEFAULT_AMBIENT_C,
                       fan_on: bool = False) -> float:
        """Equilibrium junction temperature at constant ``power_w``."""
        resistance = self.r_active_c_per_w if (fan_on and self.has_fan) else self.r_passive_c_per_w
        return ambient_c + power_w * resistance


@dataclass
class ThermalEvent:
    """A discrete thermal event observed during simulation."""

    time_s: float
    kind: str  # "fan_on" | "fan_off" | "shutdown"
    temperature_c: float


@dataclass
class ThermalSimulator:
    """Integrates the RC model forward in time.

    Use :meth:`step` for explicit time-stepping or :meth:`run_to_steady_state`
    for the paper's methodology ("each experiment runs until the temperature
    reaches steady-state", Section V).
    """

    spec: ThermalSpec
    ambient_c: float = DEFAULT_AMBIENT_C
    # None means "start at ambient"; resolved to a float in __post_init__.
    temperature_c: float | None = field(default=None)
    fan_on: bool = False
    throttled: bool = False
    shutdown: bool = False
    time_s: float = 0.0
    events: list[ThermalEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.temperature_c is None:
            self.temperature_c = self.ambient_c

    @property
    def resistance_c_per_w(self) -> float:
        if self.fan_on and self.spec.has_fan:
            return self.spec.r_active_c_per_w
        return self.spec.r_passive_c_per_w

    @property
    def surface_temperature_c(self) -> float:
        """What a thermal camera sees (junction minus sink/package drop)."""
        return self.temperature_c - self.spec.surface_offset_c

    def step(self, power_w: float, dt_s: float) -> Celsius:
        """Advance ``dt_s`` seconds at constant ``power_w``; returns junction C.

        Uses the exact exponential solution of the RC node over the step, so
        large steps remain stable.
        """
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        if self.shutdown:
            power_w = 0.0  # a tripped device stops drawing compute power
        target = self.ambient_c + power_w * self.resistance_c_per_w
        tau = self.resistance_c_per_w * self.spec.c_j_per_c
        self.temperature_c = target + (self.temperature_c - target) * math.exp(-dt_s / tau)
        self.time_s += dt_s
        self._update_fan()
        self._update_throttle()
        self._check_shutdown()
        return Celsius(self.temperature_c)

    @property
    def clock_factor(self) -> float:
        """Effective clock multiplier: 1.0 unless DVFS is throttling."""
        if self.shutdown:
            return 0.0
        return self.spec.throttle_clock_factor if self.throttled else 1.0

    def _update_throttle(self) -> None:
        if self.spec.throttle_c is None:
            return
        stop = self.spec.throttle_stop_c
        if stop is None:
            stop = self.spec.throttle_c - 5.0
        if not self.throttled and self.temperature_c >= self.spec.throttle_c:
            self.throttled = True
            self.events.append(ThermalEvent(self.time_s, "throttle_on", self.temperature_c))
        elif self.throttled and self.temperature_c <= stop:
            self.throttled = False
            self.events.append(ThermalEvent(self.time_s, "throttle_off", self.temperature_c))

    def _update_fan(self) -> None:
        if not self.spec.has_fan:
            return
        if not self.fan_on and self.temperature_c >= self.spec.fan_trigger_c:
            self.fan_on = True
            self.events.append(ThermalEvent(self.time_s, "fan_on", self.temperature_c))
        elif self.fan_on and self.temperature_c <= self.spec.fan_stop_c:
            self.fan_on = False
            self.events.append(ThermalEvent(self.time_s, "fan_off", self.temperature_c))

    def _check_shutdown(self) -> None:
        if self.shutdown or self.spec.shutdown_c is None:
            return
        if self.temperature_c >= self.spec.shutdown_c:
            self.shutdown = True
            self.events.append(ThermalEvent(self.time_s, "shutdown", self.temperature_c))

    def run_to_steady_state(self, power_w: float, dt_s: float = 1.0,
                            tolerance_c: float = 0.01, max_time_s: float = 7200.0,
                            ) -> list[tuple[float, float]]:
        """Step until the temperature settles (or shutdown); returns the trace.

        The trace is a list of ``(time_s, junction_temperature_c)`` samples,
        one per step, suitable for plotting Figure 14-style curves.
        """
        trace: list[tuple[float, float]] = [(self.time_s, self.temperature_c)]
        while self.time_s < max_time_s:
            before = self.temperature_c
            self.step(power_w, dt_s)
            trace.append((self.time_s, self.temperature_c))
            if self.shutdown:
                break
            target = self.ambient_c + power_w * self.resistance_c_per_w
            if abs(self.temperature_c - before) < tolerance_c and abs(
                target - self.temperature_c
            ) < 10 * tolerance_c:
                break
        return trace

    def idle_temperature_c(self, idle_power_w: float) -> float:
        """Steady idle junction temperature (fan assumed off at idle)."""
        return self.spec.steady_state_c(idle_power_w, self.ambient_c, fan_on=False)
