"""Device power model.

The paper reports measured idle and average (under DNN load) power for each
platform (Table III).  We model instantaneous power as idle plus a
utilization-proportional active component, which reproduces both numbers:
idle with utilization 0, the Table III average with the engine's typical
utilization while inferencing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantity import Watts


@dataclass(frozen=True)
class PowerModel:
    """Linear utilization-to-power map.

    Attributes:
        idle_w: power with no inference running (Table III "Idle Power").
        active_w: power at full compute utilization; chosen so that the
            utilization the engine reaches under DNN load lands on Table
            III's "Average Power".
    """

    idle_w: float
    active_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.active_w < self.idle_w:
            raise ValueError(
                f"need 0 <= idle ({self.idle_w}) <= active ({self.active_w})"
            )

    def power(self, utilization: float) -> Watts:
        """Instantaneous draw in watts at ``utilization`` in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        return Watts(self.idle_w + utilization * (self.active_w - self.idle_w))

    @property
    def dynamic_range_w(self) -> float:
        return self.active_w - self.idle_w
