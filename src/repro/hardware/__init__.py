"""Hardware platform models (Table III).

Each commercial device is modelled as compute units (CPU / GPU / ASIC / VPU
/ FPGA) with per-datatype peak throughput, a memory system, a power model,
a lumped-RC thermal model with the cooling hardware of Table VI, and an
optional host-transfer link (USB for the Movidius stick, PCIe for HPC GPUs).
"""

from repro.hardware.compute import ComputeKind, ComputeUnit
from repro.hardware.device import Device, DeviceCategory, TransferLink
from repro.hardware.catalog import DEVICE_REGISTRY, list_devices, load_device
from repro.hardware.memory import MemorySpec
from repro.hardware.operating_points import (
    OPERATING_POINTS,
    OperatingPoint,
    apply_operating_point,
    list_operating_points,
)
from repro.hardware.power import PowerModel
from repro.hardware.thermal import ThermalSimulator, ThermalSpec

__all__ = [
    "ComputeKind",
    "ComputeUnit",
    "DEVICE_REGISTRY",
    "Device",
    "DeviceCategory",
    "MemorySpec",
    "OPERATING_POINTS",
    "OperatingPoint",
    "PowerModel",
    "apply_operating_point",
    "list_operating_points",
    "ThermalSimulator",
    "ThermalSpec",
    "TransferLink",
    "list_devices",
    "load_device",
]
