"""Dynamic-batching server simulation.

The paper's Section VI-C contrast — single-batch edge vs batched cloud —
meets the request stream here: a server that, whenever it frees up, grabs
every queued request (up to ``max_batch``) and runs them as one batch.
Batching raises throughput via the engine's weight-amortization and
unit-fill effects, at the cost of queueing the requests that form the
batch.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.engine.executor import EngineConfig, InferenceSession
from repro.frameworks.base import DeployedModel


@dataclass(frozen=True)
class BatchServerStats:
    """Outcome of a dynamic-batching run."""

    requests: int
    batches: int
    mean_batch_size: float
    max_batch_observed: int
    throughput_rps: float
    mean_sojourn_s: float
    p99_sojourn_s: float
    p999_sojourn_s: float
    utilization: float


def batched_latency_fn(deployed: DeployedModel,
                       max_batch: int) -> Callable[[int], float]:
    """Per-BATCH wall time as a function of batch size, engine-backed.

    Sessions are built lazily per batch size and cached; the returned
    callable gives the time to finish a whole batch (per-inference latency
    times the batch size).
    """
    cache: dict[int, float] = {}

    def batch_time(batch_size: int) -> float:
        if batch_size not in cache:
            session = InferenceSession(  # repro: allow[ARCH001] per-batch sweep
                deployed, config=EngineConfig(batch_size=batch_size))
            cache[batch_size] = session.latency_s * batch_size
        return cache[batch_size]

    # Pre-validate the largest batch so OOM surfaces at setup, not mid-run.
    batch_time(max_batch)
    return batch_time


def simulate_batch_serving(
    arrival_times: np.ndarray,
    batch_time_fn: Callable[[int], float],
    max_batch: int,
) -> BatchServerStats:
    """Greedy dynamic batching: when free, serve everything queued (<= max).

    Args:
        arrival_times: sorted arrival instants.
        batch_time_fn: batch size -> seconds to complete that batch.
        max_batch: upper bound on one batch.
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    if arrivals.size == 0:
        raise ValueError("no arrivals to serve")
    if np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival times must be sorted")
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")

    index = 0
    now = 0.0
    busy_s = 0.0
    sojourns: list[float] = []
    batch_sizes: list[int] = []
    n = arrivals.size
    # The serving loop runs once per batch — plain floats and bisect keep
    # it out of per-element ndarray dispatch (identical doubles either way).
    instants = arrivals.tolist()
    while index < n:
        if instants[index] > now:
            now = instants[index]  # idle until work exists
        # Everything that has arrived by `now` is queued; grab up to max.
        queued_end = bisect.bisect_right(instants, now)
        batch = min(max_batch, queued_end - index)
        batch = max(batch, 1)
        duration = batch_time_fn(batch)
        finish = now + duration
        sojourns.extend(finish - instant
                        for instant in instants[index:index + batch])
        busy_s += duration
        batch_sizes.append(batch)
        index += batch
        now = finish

    horizon = max(now, float(arrivals[-1]))
    sojourn_array = np.asarray(sojourns)
    return BatchServerStats(
        requests=n,
        batches=len(batch_sizes),
        mean_batch_size=float(np.mean(batch_sizes)),
        max_batch_observed=max(batch_sizes),
        throughput_rps=n / horizon,
        mean_sojourn_s=float(sojourn_array.mean()),
        p99_sojourn_s=float(np.percentile(sojourn_array, 99)),
        p999_sojourn_s=float(np.percentile(sojourn_array, 99.9)),
        utilization=float(busy_s / horizon),
    )
