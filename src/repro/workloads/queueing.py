"""Single-server FIFO serving simulation.

An edge device runs one inference at a time (the single-batch regime);
requests that arrive while it is busy queue up.  Completion times follow
the Lindley recursion ``finish_i = max(arrival_i, finish_{i-1}) + service``,
so the whole simulation is a vectorizable scan.  For Poisson arrivals and
deterministic service this is the M/D/1 queue, and the property tests check
the simulated waiting time against the Pollaczek-Khinchine formula.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QueueStats:
    """Outcome of one serving simulation."""

    requests: int
    completed: int
    dropped: int
    utilization: float
    mean_sojourn_s: float
    p50_sojourn_s: float
    p95_sojourn_s: float
    p99_sojourn_s: float
    p999_sojourn_s: float
    max_queue_depth: int
    mean_wait_s: float

    @property
    def drop_fraction(self) -> float:
        return self.dropped / self.requests if self.requests else 0.0

    def meets_deadline(self, deadline_s: float, percentile: float = 0.99) -> bool:
        """True when the given sojourn percentile fits the deadline and no
        request was dropped."""
        if self.dropped:
            return False
        target = {0.5: self.p50_sojourn_s, 0.95: self.p95_sojourn_s,
                  0.99: self.p99_sojourn_s,
                  0.999: self.p999_sojourn_s}.get(percentile)
        if target is None:
            raise ValueError(f"unsupported percentile {percentile}")
        return target <= deadline_s


def simulate_serving(
    arrival_times: np.ndarray,
    service_time_s: float,
    queue_capacity: int | None = None,
    service_jitter_fraction: float = 0.0,
    seed: int = 0,
) -> QueueStats:
    """Serve ``arrival_times`` FIFO on one server.

    Args:
        arrival_times: sorted arrival instants (seconds).
        service_time_s: per-request service time (a session's latency).
        queue_capacity: maximum requests waiting (not counting the one in
            service); arrivals beyond it are dropped.  ``None`` = unbounded.
        service_jitter_fraction: lognormal sigma on service times.
        seed: RNG seed for the jitter.
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    if arrivals.size == 0:
        raise ValueError("no arrivals to serve")
    if np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival times must be sorted")
    if service_time_s <= 0:
        raise ValueError("service time must be positive")

    rng = np.random.default_rng(seed)
    if service_jitter_fraction:
        services = service_time_s * rng.lognormal(
            0.0, service_jitter_fraction, size=arrivals.size)
    else:
        services = np.full(arrivals.size, service_time_s)

    finish = 0.0
    sojourns: list[float] = []
    waits: list[float] = []
    finish_times: list[float] = []  # completions of admitted requests
    dropped = 0
    busy_s = 0.0
    max_depth = 0
    import bisect

    for arrival, service in zip(arrivals, services):
        # Queue depth seen on arrival: admitted requests not yet finished.
        # FIFO service keeps finish_times sorted, so count by bisection.
        pending = len(finish_times) - bisect.bisect_right(finish_times, arrival)
        waiting = max(0, pending - 1)
        # Dropped only when the request would have to wait AND the waiting
        # room is full; an idle server always admits.
        if queue_capacity is not None and pending > 0 and waiting >= queue_capacity:
            dropped += 1
            continue
        start = max(arrival, finish)
        finish = start + service
        finish_times.append(finish)
        waits.append(start - arrival)
        sojourns.append(finish - arrival)
        busy_s += service
        max_depth = max(max_depth, waiting + 1)

    if not sojourns:
        return QueueStats(
            requests=arrivals.size, completed=0, dropped=dropped,
            utilization=0.0, mean_sojourn_s=0.0, p50_sojourn_s=0.0,
            p95_sojourn_s=0.0, p99_sojourn_s=0.0, p999_sojourn_s=0.0,
            max_queue_depth=0, mean_wait_s=0.0,
        )
    horizon = max(finish, arrivals[-1])
    sojourn_array = np.asarray(sojourns)
    return QueueStats(
        requests=int(arrivals.size),
        completed=len(sojourns),
        dropped=dropped,
        utilization=float(busy_s / horizon),
        mean_sojourn_s=float(sojourn_array.mean()),
        p50_sojourn_s=float(np.percentile(sojourn_array, 50)),
        p95_sojourn_s=float(np.percentile(sojourn_array, 95)),
        p99_sojourn_s=float(np.percentile(sojourn_array, 99)),
        p999_sojourn_s=float(np.percentile(sojourn_array, 99.9)),
        max_queue_depth=max_depth,
        mean_wait_s=float(np.mean(waits)),
    )
