"""Request workloads and serving simulation.

The paper frames edge inference as single-batch because of "the limited
number of available requests in a given time" (Section I).  This package
makes that workload explicit: arrival processes (periodic sensor frames,
Poisson request streams, bursts) and a single-server FIFO serving
simulation that turns a device's per-inference latency into the latency
percentiles and utilization a deployment actually experiences.
"""

from repro.workloads.arrivals import (
    Arrivals,
    BurstyArrivals,
    DiurnalArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    first_n,
    reseeded,
)
from repro.workloads.batch_server import (
    BatchServerStats,
    batched_latency_fn,
    simulate_batch_serving,
)
from repro.workloads.energy_budget import EnergyBudget, duty_cycle_budget
from repro.workloads.queueing import QueueStats, simulate_serving

__all__ = [
    "Arrivals",
    "BatchServerStats",
    "BurstyArrivals",
    "DiurnalArrivals",
    "EnergyBudget",
    "PeriodicArrivals",
    "PoissonArrivals",
    "QueueStats",
    "batched_latency_fn",
    "duty_cycle_budget",
    "first_n",
    "reseeded",
    "simulate_batch_serving",
    "simulate_serving",
]
