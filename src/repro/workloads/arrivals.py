"""Arrival processes for edge inference requests."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PeriodicArrivals:
    """Fixed-rate arrivals: a camera emitting frames at ``rate_hz``."""

    rate_hz: float
    jitter_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("rate must be positive")
        if not 0 <= self.jitter_fraction < 1:
            raise ValueError("jitter fraction must be in [0, 1)")

    def generate(self, horizon_s: float) -> np.ndarray:
        """Arrival times in [0, horizon)."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        period = 1.0 / self.rate_hz
        times = np.arange(0.0, horizon_s, period)
        if self.jitter_fraction:
            rng = np.random.default_rng(self.seed)
            times = times + rng.uniform(
                0.0, self.jitter_fraction * period, size=times.shape)
        return np.sort(times[times < horizon_s])


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless request stream at mean ``rate_hz`` (cloud-style load)."""

    rate_hz: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("rate must be positive")

    def generate(self, horizon_s: float) -> np.ndarray:
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        rng = np.random.default_rng(self.seed)
        expected = self.rate_hz * horizon_s
        # Oversample interarrival gaps, then trim to the horizon.
        count = max(16, int(expected * 1.5) + 8 * int(expected**0.5))
        gaps = rng.exponential(1.0 / self.rate_hz, size=count)
        times = np.cumsum(gaps)
        while times[-1] < horizon_s:
            extra = rng.exponential(1.0 / self.rate_hz, size=count)
            times = np.concatenate([times, times[-1] + np.cumsum(extra)])
        return times[times < horizon_s]


@dataclass(frozen=True)
class BurstyArrivals:
    """Bursts of ``burst_size`` back-to-back requests at ``burst_rate_hz``.

    Models event-triggered cameras: motion wakes the sensor and several
    frames arrive at once.
    """

    burst_rate_hz: float
    burst_size: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.burst_rate_hz <= 0:
            raise ValueError("burst rate must be positive")
        if self.burst_size < 1:
            raise ValueError("burst size must be >= 1")

    @property
    def rate_hz(self) -> float:
        return self.burst_rate_hz * self.burst_size

    def generate(self, horizon_s: float) -> np.ndarray:
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        bursts = PoissonArrivals(self.burst_rate_hz, seed=self.seed).generate(horizon_s)
        times = np.repeat(bursts, self.burst_size)
        return times[times < horizon_s]
