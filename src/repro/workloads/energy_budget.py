"""Duty-cycled energy budgeting.

An edge deployment rarely inferences continuously: the device idles between
requests, and idle power — not inference energy — often dominates the
battery budget.  This module combines an arrival process with a session's
latency and the device's power model to produce the actual draw and battery
life, which the continuous-inference numbers of Figure 11 bracket from
above.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.executor import InferenceSession
from repro.measurement.energy import active_power_w

_DAY_HOURS = 24.0


@dataclass(frozen=True)
class EnergyBudget:
    """Energy accounting for a duty-cycled deployment."""

    device: str
    model: str
    request_rate_hz: float
    duty_cycle: float  # fraction of time inferencing
    average_power_w: float
    energy_per_request_j: float
    idle_share: float  # fraction of total energy burned while idle

    def battery_life_hours(self, battery_wh: float) -> float:
        if battery_wh <= 0:
            raise ValueError("battery capacity must be positive")
        return battery_wh / self.average_power_w

    def daily_energy_wh(self) -> float:
        return self.average_power_w * _DAY_HOURS


def duty_cycle_budget(session: InferenceSession, request_rate_hz: float) -> EnergyBudget:
    """Energy budget for serving ``request_rate_hz`` on ``session``.

    The device runs at its inference power for ``rate x latency`` of the
    time and at idle power otherwise.  Rates beyond the device's capacity
    are rejected — the queue would grow without bound (see
    :mod:`repro.workloads.queueing` for the transient story).
    """
    if request_rate_hz <= 0:
        raise ValueError("request rate must be positive")
    latency = session.latency_s
    duty = request_rate_hz * latency
    if duty > 1.0:
        raise ValueError(
            f"{request_rate_hz:.1f} req/s exceeds capacity "
            f"({1.0 / latency:.1f} req/s at {latency * 1e3:.1f} ms each)")
    device = session.deployed.device
    busy_power = active_power_w(session)
    idle_power = device.power.idle_w
    average = duty * busy_power + (1.0 - duty) * idle_power
    per_request = average / request_rate_hz
    idle_energy = (1.0 - duty) * idle_power
    return EnergyBudget(
        device=device.name,
        model=session.deployed.graph.name,
        request_rate_hz=request_rate_hz,
        duty_cycle=duty,
        average_power_w=average,
        energy_per_request_j=per_request,
        idle_share=idle_energy / average,
    )
