"""Scenario grids: the cells each gridded experiment will ask the Runner for.

The figure generators in :mod:`repro.harness.figures` walk their cells one
``Runner.run``/``Runner.measure`` call at a time, which is the right shape
for readable generators but the wrong shape for the engine — every call
re-enters the deploy/plan pipeline alone.  This module declares, per
experiment, the scenario grid those walks will touch, so the suite can hand
the whole grid to the sweep compiler (``Runner.run_grid``) up front and let
the generators hit the record cache.

Declaring a superset is safe: precompiled cells the generator never reads
cost one shared array-program row each.  Declaring too little is also safe:
missing cells fall back to the scalar path with identical results.  The
grid/walk agreement is pinned by the harness identity tests.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.harness import paper_data as paper
from repro.harness.figures import FIG11_PLATFORMS, FIG34_FRAMEWORKS, FIG34_MODELS
from repro.runtime import Scenario, default_runner

#: experiment id -> () -> (timed cells, untimed cells), in generator walk order.
GRID_BUILDERS: dict[str, Callable[[], tuple[list[Scenario], list[Scenario]]]] = {}


def _grid(experiment_id: str):
    def register(builder):
        GRID_BUILDERS[experiment_id] = builder
        return builder

    return register


def _cross(models: Iterable[str], device_name: str,
           frameworks: Iterable[str]) -> list[Scenario]:
    return [Scenario(model_name, device_name, framework_name)
            for model_name in models for framework_name in frameworks]


@_grid("fig02")
def _fig02() -> tuple[list[Scenario], list[Scenario]]:
    # best_latency tries every candidate framework per (device, model).
    runner = default_runner()
    timed = [
        Scenario(model_name, device_name, framework_name)
        for device_name in paper.FIG2_BEST_S
        for model_name in paper.FIG2_MODELS
        for framework_name in runner.candidates_for(device_name)
    ]
    return timed, []


@_grid("fig03")
def _fig03() -> tuple[list[Scenario], list[Scenario]]:
    return _cross(FIG34_MODELS, "Raspberry Pi 3B", FIG34_FRAMEWORKS), []


@_grid("fig04")
def _fig04() -> tuple[list[Scenario], list[Scenario]]:
    return _cross(FIG34_MODELS, "Jetson TX2", FIG34_FRAMEWORKS), []


@_grid("fig06")
def _fig06() -> tuple[list[Scenario], list[Scenario]]:
    return _cross(paper.FIG6_MODELS, "GTX Titan X",
                  ("PyTorch", "TensorFlow")), []


@_grid("fig07")
def _fig07() -> tuple[list[Scenario], list[Scenario]]:
    return _cross(paper.FIG7_MODELS, "Jetson Nano",
                  ("PyTorch", "TensorRT")), []


@_grid("fig08")
def _fig08() -> tuple[list[Scenario], list[Scenario]]:
    return _cross(paper.FIG8_MODELS, "Raspberry Pi 3B",
                  ("PyTorch", "TensorFlow", "TFLite")), []


@_grid("fig09")
def _fig09() -> tuple[list[Scenario], list[Scenario]]:
    timed = [Scenario(model_name, platform, "PyTorch")
             for model_name in paper.FIG9_MODELS
             for platform in paper.FIG9_PLATFORMS]
    return timed, []


@_grid("fig10")
def _fig10() -> tuple[list[Scenario], list[Scenario]]:
    # The TX2 baseline plus every comparison platform — a fig09 subset.
    timed = [Scenario(model_name, platform, "PyTorch")
             for model_name in paper.FIG9_MODELS
             for platform in ("Jetson TX2", *paper.FIG9_PLATFORMS[1:])]
    return timed, []


@_grid("fig12")
def _fig12() -> tuple[list[Scenario], list[Scenario]]:
    # The generator stops at the first deployable candidate; later
    # candidates are a (cheap, shared) superset.
    runner = default_runner()
    untimed = [
        Scenario(model_name, device_name, framework_name)
        for device_name in FIG11_PLATFORMS
        for model_name in paper.FIG2_MODELS
        for framework_name in runner.candidates_for(device_name,
                                                    default=("PyTorch",))
    ]
    return [], untimed


@_grid("fig13")
def _fig13() -> tuple[list[Scenario], list[Scenario]]:
    untimed = []
    for model_name in paper.FIG13_MODELS:
        untimed.append(Scenario(model_name, "Raspberry Pi 3B", "TensorFlow"))
        untimed.append(Scenario(model_name, "Raspberry Pi 3B", "TensorFlow",
                                containerized=True))
    return [], untimed


def placement_pricing_grid(models: Iterable[str],
                           devices: Iterable[str],
                           ) -> list[Scenario]:
    """The untimed single-node grid a placement search over ``models``
    touches, in search order.

    NOT registered in :data:`GRID_BUILDERS` — placement is not a suite
    experiment (the suite snapshot is pinned at zero tolerance).  The
    placement benchmark precompiles this grid through ``run_grid`` so the
    optimizer's per-model sweeps hit the record cache, the same
    warm-path shape the suite uses for figures.
    """
    runner = default_runner()
    grid: list[Scenario] = []
    seen: set = set()
    for model_name in models:
        for device_name in devices:
            frameworks = runner.candidates_for(
                device_name, default=("TensorFlow", "PyTorch", "Caffe"))
            for framework_name in frameworks:
                scenario = Scenario(model_name, device_name, framework_name)
                if scenario.key not in seen:
                    seen.add(scenario.key)
                    grid.append(scenario)
    return grid


def suite_grid(experiment_ids: Iterable[str],
               ) -> tuple[list[Scenario], list[Scenario]]:
    """The deduplicated (timed, untimed) grids for a set of experiments.

    Cells keep first-appearance order, so the deploy-cache outcome
    sequence matches running the experiments back to back.  Experiments
    without a registered grid contribute nothing (they run scalar).
    """
    timed: list[Scenario] = []
    untimed: list[Scenario] = []
    seen_timed: set = set()
    seen_untimed: set = set()
    for experiment_id in experiment_ids:
        builder = GRID_BUILDERS.get(experiment_id)
        if builder is None:
            continue
        cells_timed, cells_untimed = builder()
        for scenario in cells_timed:
            if scenario.key not in seen_timed:
                seen_timed.add(scenario.key)
                timed.append(scenario)
        for scenario in cells_untimed:
            if scenario.key not in seen_untimed:
                seen_untimed.add(scenario.key)
                untimed.append(scenario)
    return timed, untimed
