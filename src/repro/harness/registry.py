"""Experiment registry: every reproduced table and figure by id."""

from __future__ import annotations

from repro.core.experiment import Experiment
from repro.core.registry import Registry
from repro.core.result import ResultTable
from repro.harness import extensions, figures, tables

EXPERIMENT_REGISTRY: Registry[Experiment] = Registry("experiment")

_EXPERIMENTS = (
    ("table1", "Table I", "Model FLOP/parameter inventory", tables.table1_models),
    ("table2", "Table II", "Framework feature and optimization matrix", tables.table2_frameworks),
    ("table3", "Table III", "Device specs with measured idle/average power", tables.table3_devices),
    ("table5", "Table V", "Model x platform compatibility matrix", tables.table5_compat),
    ("table6", "Table VI", "Cooling hardware and idle temperatures", tables.table6_cooling),
    ("fig01", "Figure 1, Section II", "Models sorted by FLOP/Param", figures.fig01_flop_per_param),
    ("fig02", "Figure 2, Section VI-A", "Best-framework latency per edge device", figures.fig02_best_framework),
    ("fig03", "Figure 3, Section VI-B1", "RPi cross-framework latency", figures.fig03_rpi_frameworks),
    ("fig04", "Figure 4, Section VI-B1", "Jetson TX2 cross-framework latency", figures.fig04_tx2_frameworks),
    ("fig05", "Figure 5, Section VI-B3", "Software-stack profiles", figures.fig05_software_stack),
    ("fig06", "Figure 6, Section VI-B1", "GTX Titan X: TF vs PyTorch", figures.fig06_gtx_tf_vs_pytorch),
    ("fig07", "Figure 7, Section VI-B2", "Jetson Nano: PyTorch vs TensorRT", figures.fig07_nano_tensorrt),
    ("fig08", "Figure 8, Section VI-B2", "RPi: TF vs PyTorch vs TFLite", figures.fig08_rpi_tflite),
    ("fig09", "Figure 9, Section VI-C", "Edge vs HPC latency (PyTorch)", figures.fig09_edge_vs_hpc),
    ("fig10", "Figure 10, Section VI-C", "Speedup over Jetson TX2", figures.fig10_speedup_over_tx2),
    ("fig11", "Figure 11, Section VI-E", "Energy per inference", figures.fig11_energy),
    ("fig12", "Figure 12, Section VI-E", "Inference time vs active power", figures.fig12_time_vs_power),
    ("fig13", "Figure 13, Section VI-D", "Virtualization overhead", figures.fig13_virtualization),
    ("fig14", "Figure 14, Section VI-F", "Temperature behaviour", figures.fig14_temperature),
    ("fig14-curves", "Figure 14, Section VI-F",
     "Temperature-vs-time curves", figures.fig14_temperature_curves),
    # Extensions beyond the published figures (DESIGN.md ablation/extension list).
    ("ext-batch", "Extension of Section VI-C", "Batch-size crossover, edge vs HPC",
     extensions.ext_batch_crossover),
    ("ext-pruning", "Extension of Table II", "Pruning exploitation across frameworks",
     extensions.ext_pruning_exploitation),
    ("ext-dtype", "Extension of Section III-B", "Deployment datatype sensitivity",
     extensions.ext_dtype_sensitivity),
    ("ext-rnn", "Extension of Section II (future work)", "Recurrent models across platforms",
     extensions.ext_rnn_models),
    ("ext-sustained", "Extension of Section VI-F", "Thermally-sustained throughput",
     extensions.ext_sustained_throughput),
    ("ext-pareto", "Extension of Section VI-E", "Pareto frontier of Figure 12",
     extensions.ext_pareto_frontier),
    ("ext-split", "Extension of Section VIII (related work)",
     "Neurosurgeon-style cloud-edge split", extensions.ext_cloud_edge_split),
    ("ext-pipeline", "Extension of Section VIII (related work)",
     "Collaborative pipeline across Raspberry Pis", extensions.ext_collaborative_pipeline),
    ("ext-serving", "Extension of Section I (single-batch framing)",
     "Streaming-camera FIFO serving percentiles", extensions.ext_serving_deadlines),
    ("ext-power-modes", "Extension of Table III",
     "Jetson DVFS power modes", extensions.ext_power_modes),
    ("ext-batch-serving", "Extension of Section VI-C",
     "Dynamic batching under load", extensions.ext_batch_serving),
)

for _id, _ref, _description, _generator in _EXPERIMENTS:
    EXPERIMENT_REGISTRY.register(
        _id,
        (lambda i=_id, r=_ref, d=_description, g=_generator: Experiment(
            experiment_id=i, paper_reference=r, description=d, generator=g)),
    )


def run_experiment(experiment_id: str) -> ResultTable:
    """Run one experiment and return its result table."""
    return EXPERIMENT_REGISTRY.create(experiment_id).run()


def list_experiments() -> list[str]:
    """Ids of every registered experiment, paper order then extensions."""
    return EXPERIMENT_REGISTRY.names()
