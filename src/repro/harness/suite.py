"""Whole-suite export and run-to-run comparison.

``export_results`` snapshots every experiment's table to one JSON document;
``compare_results`` diffs two snapshots within a tolerance.  Together they
give the repository a regression workflow: snapshot before a change,
compare after, and see exactly which experiment cells moved.

Exports are compiled, not just cached: before the experiments run,
``precompile_experiments`` hands every gridded experiment's scenario cells
to the sweep compiler in one batch (``Runner.run_grid``), and finished
payloads are memoized per experiment id, so a warm re-export is a straight
cache read.  Both layers are observationally invisible — the identity suite
diffs compiled against scalar exports at zero tolerance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.engine.cache import PAYLOAD_CACHE, caching_enabled
from repro.harness.registry import EXPERIMENT_REGISTRY, list_experiments, run_experiment

SNAPSHOT_VERSION = 1


def experiment_payload(experiment_id: str) -> dict[str, Any]:
    """Run one experiment and shape its table as a JSON-safe snapshot cell.

    Payloads are memoized (treat them as immutable, like every cached
    artifact); ``--no-cache`` rebuilds from scratch.
    """
    if caching_enabled():
        found, payload = PAYLOAD_CACHE.cached_value(experiment_id)
        if found:
            return payload
    experiment = EXPERIMENT_REGISTRY.create(experiment_id)
    table = run_experiment(experiment_id)
    payload = {
        "paper_reference": experiment.paper_reference,
        "description": experiment.description,
        "title": table.title,
        "columns": table.columns,
        "rows": table.to_records(),
        "notes": table.notes,
    }
    if caching_enabled():
        payload = PAYLOAD_CACHE.store(experiment_id, payload)
    return payload


def precompile_experiments(experiment_ids: list[str]) -> None:
    """Compile every gridded experiment's cells ahead of the generators.

    One ``run_grid`` call per timing mode dedups deployments and plans
    across ALL the experiments and lowers their rooflines together; the
    generators then resolve their cells from the record cache.  A no-op
    for experiments without a declared grid.
    """
    from repro.harness.grids import suite_grid
    from repro.runtime import default_runner

    timed, untimed = suite_grid(experiment_ids)
    runner = default_runner()
    if timed:
        runner.run_grid(timed)
    if untimed:
        runner.run_grid(untimed, use_timer=False)


def export_results(experiment_ids: list[str] | None = None,
                   jobs: int = 1, executor: str = "thread") -> dict[str, Any]:
    """Run experiments and collect their tables into one JSON-safe dict.

    ``jobs > 1`` fans the experiments out across the parallel sweep runner
    (:mod:`repro.harness.sweep_runner`); the snapshot is identical to the
    serial one — experiment order is preserved and every cell's measurement
    noise is seeded per-cell, not per-run.
    """
    ids = experiment_ids or list_experiments()
    if jobs > 1:
        from repro.harness.sweep_runner import run_sweep

        return run_sweep(ids, jobs=jobs, executor=executor).snapshot
    if caching_enabled():
        precompile_experiments(ids)
    experiments = {i: experiment_payload(i) for i in ids}
    return {"snapshot_version": SNAPSHOT_VERSION, "experiments": experiments}


def save_results(path: str | Path, experiment_ids: list[str] | None = None,
                 jobs: int = 1, executor: str = "thread") -> None:
    payload = export_results(experiment_ids, jobs=jobs, executor=executor)
    Path(path).write_text(json.dumps(payload, indent=1))


def load_results(path: str | Path) -> dict[str, Any]:
    payload = json.loads(Path(path).read_text())
    version = payload.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(f"unsupported snapshot version {version!r}")
    return payload


@dataclass(frozen=True)
class CellDifference:
    """One cell that moved between two snapshots."""

    experiment_id: str
    row_label: str
    column: str
    before: Any
    after: Any

    def describe(self) -> str:
        return (f"{self.experiment_id} / {self.row_label} / {self.column}: "
                f"{self.before!r} -> {self.after!r}")


def compare_results(before: dict[str, Any], after: dict[str, Any],
                    rel_tolerance: float = 0.01) -> list[CellDifference]:
    """Cells differing beyond ``rel_tolerance`` (numeric) or at all (other).

    Experiments or rows present in only one snapshot are reported as whole
    differences with the missing side ``None``.
    """
    differences: list[CellDifference] = []
    before_experiments = before["experiments"]
    after_experiments = after["experiments"]
    for experiment_id in sorted(set(before_experiments) | set(after_experiments)):
        left = before_experiments.get(experiment_id)
        right = after_experiments.get(experiment_id)
        if left is None or right is None:
            differences.append(CellDifference(
                experiment_id, "(experiment)", "(presence)",
                "present" if left else None, "present" if right else None))
            continue
        left_rows = {row["label"]: row for row in left["rows"]}
        right_rows = {row["label"]: row for row in right["rows"]}
        for label in sorted(set(left_rows) | set(right_rows)):
            row_before = left_rows.get(label)
            row_after = right_rows.get(label)
            if row_before is None or row_after is None:
                differences.append(CellDifference(
                    experiment_id, label, "(presence)",
                    "present" if row_before else None,
                    "present" if row_after else None))
                continue
            for column in sorted((set(row_before) | set(row_after)) - {"label"}):
                a, b = row_before.get(column), row_after.get(column)
                if not _cells_equal(a, b, rel_tolerance):
                    differences.append(CellDifference(experiment_id, label, column, a, b))
    return differences


def _cells_equal(a: Any, b: Any, rel_tolerance: float) -> bool:
    if isinstance(a, bool) or isinstance(b, bool):
        return a == b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if a == b:
            return True
        scale = max(abs(a), abs(b))
        return scale > 0 and abs(a - b) / scale <= rel_tolerance
    return a == b
