"""Table generators: Tables I, II, III, V and VI of the paper."""

from __future__ import annotations

from repro.core.result import ResultTable
from repro.frameworks import load_framework
from repro.frameworks.compat import TABLE_V_FRAMEWORKS, compatibility_matrix
from repro.harness import paper_data as paper
from repro.hardware import list_devices, load_device
from repro.measurement.power_meter import PowerAnalyzer, USBMultimeter, average_power_w
from repro.models import load_model

# Frameworks in Table II's column order.
TABLE2_FRAMEWORKS = ("TensorFlow", "TFLite", "Caffe", "NCSDK", "PyTorch",
                     "TensorRT", "DarkNet")


def table1_models() -> ResultTable:
    table = ResultTable(
        "Table I: DNN models (FLOP, parameters, compute intensity)",
        ["input", "gflop", "paper_gflop", "params_m", "paper_params_m", "flop_per_param"],
        caption="FLOP counts multiply-accumulates; paper YOLOv3/C3D entries "
        "follow DarkNet's 2-ops convention (see EXPERIMENTS.md).",
    )
    for model_name, (input_size, gflop, params_m) in paper.TABLE1_MODELS.items():
        graph = load_model(model_name)
        table.add_row(
            model_name,
            input="x".join(str(d) for d in graph.inputs[0].output_shape.dims[1:]),
            gflop=graph.total_macs / 1e9,
            paper_gflop=gflop,
            params_m=graph.total_params / 1e6,
            paper_params_m=params_m,
            flop_per_param=graph.flop_per_param,
        )
    return table


def table2_frameworks() -> ResultTable:
    table = ResultTable(
        "Table II: framework specifications and optimizations",
        list(TABLE2_FRAMEWORKS),
        caption="Rows mirror the paper's Table II; stars rendered as 1-3.",
    )
    frameworks = {name: load_framework(name) for name in TABLE2_FRAMEWORKS}
    rows: list[tuple[str, str]] = [
        ("Language", "language"),
        ("Industry backed", "industry_backed"),
        ("Training framework", "training_framework"),
        ("Usability", "usability"),
        ("Adding new models", "adding_new_models"),
        ("Pre-defined models", "predefined_models"),
        ("Documentation", "documentation"),
        ("No extra steps", "no_extra_steps"),
        ("Mobile deployment", "mobile_deployment"),
        ("Low-level modifications", "low_level_modifications"),
        ("Compatibility", "compatibility_with_others"),
        ("Quantization", "quantization"),
        ("Mixed-precision", "mixed_precision"),
        ("Dynamic graph", "dynamic_graph"),
        ("Pruning", "pruning_exploit"),
        ("Fusion", "fusion"),
        ("Auto tuning", "auto_tuning"),
        ("Half-precision", "half_precision"),
    ]
    for label, attribute in rows:
        table.add_row(label, **{
            name: getattr(framework.capabilities, attribute)
            for name, framework in frameworks.items()
        })
    return table


def table3_devices() -> ResultTable:
    table = ResultTable(
        "Table III: hardware platforms, measured idle and average power",
        ["category", "memory", "idle_w", "paper_idle_w", "average_w", "paper_average_w"],
        caption="Idle/average watts read with the Section V instruments "
        "against the device power models.",
    )
    for device_name in list_devices():
        device = load_device(device_name)
        meter = (
            USBMultimeter(seed=3)
            if device_name in ("Raspberry Pi 3B", "EdgeTPU", "Movidius NCS")
            else PowerAnalyzer(seed=3)
        )
        idle = average_power_w(meter.record(lambda _t: device.power.idle_w, 10.0))
        average = average_power_w(meter.record(lambda _t: device.average_power_w(), 10.0))
        reference = paper.TABLE3_POWER_W.get(device_name, (None, None))
        table.add_row(
            device_name,
            category=device.category.value,
            memory=device.memory.describe(),
            idle_w=idle,
            paper_idle_w=reference[0],
            average_w=average,
            paper_average_w=reference[1],
        )
    return table


def table5_compat() -> ResultTable:
    table = ResultTable(
        "Table V: models and platforms compatibility matrix",
        list(TABLE_V_FRAMEWORKS) + ["matches_paper"],
        caption="Symbols: + runs, ^ dynamic-graph fallback, O code "
        "incompatibility, 4 TFLite conversion barrier, ^^ FPGA fabric spill.",
    )
    matrix = compatibility_matrix()
    for model_name, row in matrix.items():
        expected = paper.TABLE5_EXPECTED[model_name]
        cells = {device: result.status.symbol for device, result in row.items()}
        cells["matches_paper"] = all(
            cells[device] == expected[device] for device in expected
        )
        table.add_row(model_name, **cells)
    return table


def table6_cooling() -> ResultTable:
    table = ResultTable(
        "Table VI: cooling hardware and idle temperatures",
        ["heatsink", "fan", "idle_surface_c", "paper_idle_c"],
    )
    for device_name, (heatsink, fan, idle_c) in paper.TABLE6_COOLING.items():
        device = load_device(device_name)
        spec = device.thermal
        idle_surface = spec.steady_state_c(device.power.idle_w) - spec.surface_offset_c
        table.add_row(
            device_name,
            heatsink=spec.has_heatsink,
            fan=spec.has_fan,
            idle_surface_c=idle_surface,
            paper_idle_c=idle_c,
        )
    return table
