"""Programmatic validation of the paper's headline claims.

Each claim is a named check that runs the harness and reports pass/fail
with the measured evidence.  ``python -m repro validate`` drives this; the
integration test suite asserts the same facts with tighter bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.result import geometric_mean
from repro.harness.registry import run_experiment
from repro.runtime import Scenario, default_runner

_RUNNER = default_runner()


def _latency(model_name: str, device_name: str, framework_name: str) -> float:
    """Timed seconds per inference through the shared Runner."""
    return _RUNNER.measure(Scenario(model_name, device_name, framework_name))


@dataclass(frozen=True)
class ClaimResult:
    claim_id: str
    section: str
    statement: str
    passed: bool
    evidence: str


def _claim(claim_id: str, section: str, statement: str):
    def decorate(fn: Callable[[], tuple[bool, str]]):
        _CLAIMS.append((claim_id, section, statement, fn))
        return fn

    return decorate


_CLAIMS: list[tuple[str, str, str, Callable[[], tuple[bool, str]]]] = []


@_claim("tf-fastest-rpi", "VI-B1",
        "TensorFlow is the fastest general framework on the Raspberry Pi")
def _check_tf_rpi() -> tuple[bool, str]:
    tf = _latency("ResNet-50", "Raspberry Pi 3B", "TensorFlow")
    caffe = _latency("ResNet-50", "Raspberry Pi 3B", "Caffe")
    pytorch = _latency("ResNet-50", "Raspberry Pi 3B", "PyTorch")
    return tf < caffe and tf < pytorch, (
        f"ResNet-50 on RPi: TF {tf:.2f} s, Caffe {caffe:.2f} s, PyTorch {pytorch:.2f} s"
    )


@_claim("pytorch-fastest-gpu", "VI-B1",
        "PyTorch beats TensorFlow on GPU platforms")
def _check_pt_gpu() -> tuple[bool, str]:
    pt = _latency("ResNet-50", "Jetson TX2", "PyTorch")
    tf = _latency("ResNet-50", "Jetson TX2", "TensorFlow")
    return pt < tf, f"ResNet-50 on TX2: PyTorch {pt * 1e3:.1f} ms, TF {tf * 1e3:.1f} ms"


@_claim("tensorrt-speedup", "VI-B2",
        "TensorRT speeds the Jetson Nano up ~4x over PyTorch on average")
def _check_tensorrt() -> tuple[bool, str]:
    table = run_experiment("fig07")
    speedups = table.column("speedup")
    average = sum(speedups) / len(speedups)
    return 3.0 < average < 8.0, f"average speedup {average:.2f}x (paper 4.1x)"


@_claim("tflite-speedup", "VI-B2",
        "TFLite beats TensorFlow (~1.6x) and PyTorch on the RPi")
def _check_tflite() -> tuple[bool, str]:
    table = run_experiment("fig08")
    tf = table.column("speedup_vs_tf")
    average = sum(tf) / len(tf)
    return all(s > 1 for s in tf) and average < 2.5, (
        f"TFLite over TF averages {average:.2f}x (paper 1.58x)"
    )


@_claim("hpc-geomean", "VI-C",
        "HPC platforms average only ~3x over the Jetson TX2 at batch 1")
def _check_geomean() -> tuple[bool, str]:
    speedups = []
    for model in ("ResNet-18", "ResNet-50", "VGG16", "MobileNet-v2", "C3D"):
        tx2 = _latency(model, "Jetson TX2", "PyTorch")
        for platform in ("Xeon E5-2696 v4", "GTX Titan X", "Titan Xp", "RTX 2080"):
            speedups.append(tx2 / _latency(model, platform, "PyTorch"))
    geo = geometric_mean(speedups)
    return 2.0 < geo < 5.0, f"geomean {geo:.2f}x (paper 2.99x)"


@_claim("xeon-single-batch", "VI-C",
        "The Xeon loses to the TX2 on compute-bound models, competes on VGG")
def _check_xeon() -> tuple[bool, str]:
    resnet = (_latency("ResNet-50", "Xeon E5-2696 v4", "PyTorch")
              / _latency("ResNet-50", "Jetson TX2", "PyTorch"))
    vgg = (_latency("VGG16", "Xeon E5-2696 v4", "PyTorch")
           / _latency("VGG16", "Jetson TX2", "PyTorch"))
    return resnet > 1.0 and vgg < 1.3, (
        f"Xeon/TX2 latency ratio: ResNet-50 {resnet:.2f}, VGG16 {vgg:.2f}"
    )


@_claim("docker-overhead", "VI-D", "Docker overhead stays within 5%")
def _check_docker() -> tuple[bool, str]:
    table = run_experiment("fig13")
    worst = max(table.column("slowdown"))
    return worst <= 0.05 + 1e-9, f"worst slowdown {worst:.1%}"


@_claim("energy-ordering", "VI-E",
        "RPi is the least energy-efficient platform; EdgeTPU reaches ~11 mJ")
def _check_energy() -> tuple[bool, str]:
    table = run_experiment("fig11")
    rpi = table.row("Raspberry Pi 3B / ResNet-18")["energy_mj"]
    edgetpu = table.row("EdgeTPU / MobileNet-v2")["energy_mj"]
    others = [table.row(f"{d} / ResNet-18")["energy_mj"]
              for d in ("Jetson TX2", "Jetson Nano", "Movidius NCS")]
    return rpi > max(others) and edgetpu < 20, (
        f"RPi {rpi:.0f} mJ vs others <= {max(others):.0f} mJ; "
        f"EdgeTPU MobileNet-v2 {edgetpu:.1f} mJ"
    )


@_claim("pareto-extremes", "VI-E",
        "Movidius has the lowest power, EdgeTPU the lowest latency (Fig. 12)")
def _check_pareto() -> tuple[bool, str]:
    table = run_experiment("ext-pareto")
    devices = {row["device"] for row in table}
    return {"EdgeTPU", "Movidius NCS"} <= devices, (
        f"frontier devices: {sorted(devices)}"
    )


@_claim("thermal-events", "VI-F",
        "RPi shuts down thermally; the Jetson fans engage; Movidius stays flattest")
def _check_thermal() -> tuple[bool, str]:
    table = run_experiment("fig14")
    rpi = "shutdown" in table.row("Raspberry Pi 3B")["events"]
    fans = all("fan_on" in table.row(d)["events"]
               for d in ("Jetson TX2", "Jetson Nano"))
    variations = {row.label: row["steady_surface_c"] - row["idle_surface_c"]
                  for row in table}
    movidius = min(variations, key=variations.get) == "Movidius NCS"
    return rpi and fans and movidius, (
        f"rpi shutdown={rpi}, fans={fans}, "
        f"lowest variation={min(variations, key=variations.get)}"
    )


@_claim("table5-exact", "VI-A", "The Table V compatibility matrix matches cell-for-cell")
def _check_table5() -> tuple[bool, str]:
    table = run_experiment("table5")
    matches = [row["matches_paper"] for row in table]
    return all(matches), f"{sum(matches)}/{len(matches)} rows match"


def validate_claims(claim_ids: list[str] | None = None) -> list[ClaimResult]:
    """Run all (or the named) claims and return their results."""
    selected = _CLAIMS
    if claim_ids:
        known = {claim_id for claim_id, *_ in _CLAIMS}
        unknown = set(claim_ids) - known
        if unknown:
            raise KeyError(f"unknown claims: {sorted(unknown)}")
        selected = [entry for entry in _CLAIMS if entry[0] in claim_ids]
    results = []
    for claim_id, section, statement, check in selected:
        passed, evidence = check()
        results.append(ClaimResult(claim_id, section, statement, passed, evidence))
    return results


def list_claims() -> list[str]:
    return [claim_id for claim_id, *_ in _CLAIMS]
