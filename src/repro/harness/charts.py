"""ASCII charts for figure-style output.

The paper presents bar charts and a log-log scatter; the CLI and examples
can render the same shapes in a terminal: horizontal bars (linear or log
scale) from a ResultTable column, and a log-log scatter grid for the
Figure 12 time-vs-power plane.
"""

from __future__ import annotations

import math

from repro.core.result import ResultTable

DEFAULT_WIDTH = 48


def bar_chart(table: ResultTable, column: str, *, log_scale: bool = False,
              width: int = DEFAULT_WIDTH, unit: str = "") -> str:
    """Horizontal bars for one numeric column; None cells render as 'n/a'."""
    if column not in table.columns:
        raise KeyError(f"no column {column!r} in table {table.title!r}")
    values = [(row.label, row.get(column)) for row in table.rows]
    numeric = [v for _label, v in values if v is not None]
    if not numeric:
        raise ValueError(f"column {column!r} has no numeric values")
    if log_scale and min(numeric) <= 0:
        raise ValueError("log scale requires positive values")

    if log_scale:
        low = math.log10(min(numeric))
        high = math.log10(max(numeric))
    else:
        low, high = 0.0, max(numeric)
    span = (high - low) or 1.0

    label_width = max(len(label) for label, _v in values)
    lines = [f"{table.title} — {column}" + (" (log scale)" if log_scale else "")]
    for label, value in values:
        if value is None:
            lines.append(f"{label:{label_width}s} | n/a")
            continue
        magnitude = math.log10(value) if log_scale else value
        filled = int(round((magnitude - low) / span * width))
        filled = max(1, min(width, filled)) if value > 0 else 0
        lines.append(
            f"{label:{label_width}s} |{'#' * filled:{width}s}| "
            f"{value:,.3g} {unit}".rstrip()
        )
    return "\n".join(lines)


def roofline_chart(graph, peak_macs_per_s: float, bandwidth_bytes_per_s: float,
                   *, width: int = 60, height: int = 16) -> str:
    """ASCII roofline: each op plotted at (intensity, attainable MAC/s).

    Ops sit ON the roofline by construction (attainable = min(peak,
    bandwidth x intensity)); the chart shows how much of the model's work
    lives left (memory-bound) or right (compute-bound) of the ridge.
    """
    from repro.graphs.analysis import intensity_profile, ridge_point

    profile = [e for e in intensity_profile(graph) if e.macs > 0]
    if not profile:
        raise ValueError(f"graph {graph.name!r} has no compute to plot")
    ridge = ridge_point(peak_macs_per_s, bandwidth_bytes_per_s)
    points = []
    for entry in profile:
        attainable = min(peak_macs_per_s, bandwidth_bytes_per_s * entry.intensity)
        marker = "C" if entry.intensity >= ridge else "M"
        points.append((marker + entry.name, entry.intensity, attainable / 1e9))
    chart = scatter_loglog(points, width=width, height=height,
                           x_label="MACs/byte", y_label="GMAC/s")
    compute_macs = sum(e.macs for e in profile if e.intensity >= ridge)
    total = sum(e.macs for e in profile)
    return (f"{graph.name} roofline (ridge at {ridge:.1f} MACs/byte, "
            f"{compute_macs / total:.0%} of MACs compute-bound)\n" + chart)


def scatter_loglog(points: list[tuple[str, float, float]], *,
                   width: int = 60, height: int = 18,
                   x_label: str = "x", y_label: str = "y") -> str:
    """A log-log scatter: each point is (marker-label, x, y).

    The first character of each label is the plot marker; a legend maps
    markers back to labels.  Reproduces the Figure 12 reading at terminal
    resolution.
    """
    if not points:
        raise ValueError("nothing to plot")
    if any(x <= 0 or y <= 0 for _l, x, y in points):
        raise ValueError("log-log scatter requires positive coordinates")

    xs = [math.log10(x) for _l, x, _y in points]
    ys = [math.log10(y) for _l, _x, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers: dict[str, str] = {}
    for (label, x, y), lx, ly in zip(points, xs, ys):
        marker = label[0].upper()
        markers.setdefault(marker, label)
        column = int((lx - x_low) / x_span * (width - 1))
        row = int((y_high - ly) / y_span * (height - 1))
        grid[row][column] = marker

    lines = [f"{y_label} (log) ^"]
    lines += ["".join(row_cells) for row_cells in grid]
    lines.append("-" * width + f"> {x_label} (log)")
    legend = ", ".join(f"{marker}={label}" for marker, label in sorted(markers.items()))
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
