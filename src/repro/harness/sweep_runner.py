"""Parallel sweep runner: fan experiments or scenarios across a pool.

The experiment generators are pure functions of their scenarios —
measurement noise included, since every cell seeds its own RNG from its
canonical key (``Scenario.seed``).  That makes the whole suite
embarrassingly parallel: workers share the engine's memoization layer
(thread executor) or build their own per process (process executor), and
the assembled snapshot is byte-identical to the serial one regardless of
completion order.

Two granularities:

* :func:`run_sweep` — experiment-level: one worker per registered
  figure/table, producing an export snapshot plus timings.
* :func:`run_scenarios` — cell-level: one :class:`repro.runtime.RunRecord`
  per :class:`repro.runtime.Scenario`, delegated to
  :meth:`repro.runtime.Runner.run_cells`.

``python -m repro suite --jobs N --stats`` is the CLI face of this module.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.engine.cache import cache_stats, caching_enabled
from repro.engine.compile import compile_stats
from repro.harness.registry import list_experiments
from repro.harness.suite import (
    SNAPSHOT_VERSION,
    experiment_payload,
    precompile_experiments,
)
from repro.runtime import RunRecord, Scenario, default_runner

EXECUTORS = ("thread", "process")


@dataclass(frozen=True)
class ExperimentRun:
    """Wall-clock accounting for one experiment cell."""

    experiment_id: str
    wall_s: float


@dataclass
class SweepResult:
    """An export snapshot plus the per-experiment timing that produced it."""

    snapshot: dict[str, Any]
    runs: list[ExperimentRun]
    wall_s: float
    jobs: int
    executor: str
    cache: dict[str, dict[str, Any]]
    compile: dict[str, Any] = field(default_factory=dict)

    @property
    def experiment_s(self) -> float:
        """Summed per-experiment wall time (> ``wall_s`` when parallel)."""
        return sum(run.wall_s for run in self.runs)

    def describe(self) -> str:
        lines = [
            f"{run.experiment_id:16s} {run.wall_s * 1e3:9.1f} ms"
            for run in sorted(self.runs, key=lambda r: r.wall_s, reverse=True)
        ]
        lines.append(
            f"{len(self.runs)} experiments in {self.wall_s:.2f} s wall "
            f"({self.experiment_s:.2f} s summed) with {self.jobs} "
            f"{self.executor} worker(s)"
        )
        if self.compile.get("cells"):
            lines.append(
                f"sweep compiler: {self.compile['cells']} cells -> "
                f"{self.compile['unique_plans']} plans "
                f"({self.compile['dedup_ratio']:.1f}x dedup) in "
                f"{self.compile['array_programs']} array program(s)"
            )
        return "\n".join(lines)


def _run_cell(experiment_id: str) -> tuple[str, dict[str, Any], float]:
    """Worker body: one experiment, timed.  Module-level so it pickles."""
    start = time.perf_counter()
    payload = experiment_payload(experiment_id)
    return experiment_id, payload, time.perf_counter() - start


def run_sweep(experiment_ids: list[str] | None = None, jobs: int = 1,
              executor: str = "thread") -> SweepResult:
    """Run experiments (optionally in parallel) into a snapshot + timings.

    Args:
        experiment_ids: ids to run; default every registered experiment.
        jobs: worker count; ``<= 1`` runs serially in this thread.
        executor: ``"thread"`` shares this process's memoization layer
            (best once caches are warm or for the deterministic-output
            guarantee at zero setup cost); ``"process"`` sidesteps the GIL
            for cold CPU-bound sweeps, with per-worker caches.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    ids = list(experiment_ids or list_experiments())
    start = time.perf_counter()
    if caching_enabled() and (executor == "thread" or jobs <= 1):
        # Process workers build their own caches; precompiling here would
        # only warm this process.  Thread workers share it.
        precompile_experiments(ids)
    if jobs <= 1 or len(ids) <= 1:
        results = [_run_cell(experiment_id) for experiment_id in ids]
    else:
        pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=min(jobs, len(ids))) as pool:
            # Executor.map preserves input order: the snapshot comes out in
            # registry order no matter which worker finishes first.
            results = list(pool.map(_run_cell, ids))
    wall_s = time.perf_counter() - start
    snapshot = {
        "snapshot_version": SNAPSHOT_VERSION,
        "experiments": {experiment_id: payload for experiment_id, payload, _ in results},
    }
    runs = [ExperimentRun(experiment_id, cell_wall)
            for experiment_id, _, cell_wall in results]
    return SweepResult(
        snapshot=snapshot,
        runs=runs,
        wall_s=wall_s,
        jobs=max(1, jobs),
        executor=executor,
        cache=cache_stats(),
        compile=compile_stats(),
    )


def run_scenarios(scenarios: list[Scenario], jobs: int = 1,
                  executor: str = "thread",
                  use_timer: bool = True) -> list[RunRecord]:
    """Run individual cells (optionally in parallel) into RunRecords.

    A thin face over :meth:`repro.runtime.Runner.run_cells` so sweep
    consumers get cell-level fan-out with the same executor semantics as
    the experiment-level sweep.  Results preserve input order.
    """
    return default_runner().run_cells(
        scenarios, jobs=jobs, executor=executor, use_timer=use_timer)
