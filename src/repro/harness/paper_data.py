"""Paper-reported reference numbers.

Transcribed from the paper's tables and (where the published scan is
legible) figures.  Values the scan garbles are recorded as ``None`` rather
than guessed; EXPERIMENTS.md discusses each gap.  Units: seconds unless a
name says otherwise.
"""

from __future__ import annotations

# ---------------------------------------------------------------- Table I
# model -> (input size, GFLOP as printed, params in millions)
TABLE1_MODELS: dict[str, tuple[str, float, float]] = {
    "ResNet-18": ("224x224", 1.83, 11.69),
    "ResNet-50": ("224x224", 4.14, 25.56),
    "ResNet-101": ("224x224", 7.87, 44.55),
    "Xception": ("224x224", 4.65, 22.91),
    "MobileNet-v2": ("224x224", 0.32, 3.53),
    "Inception-v4": ("224x224", 12.27, 42.71),
    "AlexNet": ("224x224", 0.72, 102.14),
    "VGG16": ("224x224", 15.47, 138.36),
    "VGG19": ("224x224", 19.63, 143.66),
    "VGG-S 32x32": ("32x32", 0.11, 32.11),
    "VGG-S 224x224": ("224x224", 3.27, 102.91),
    "CifarNet 32x32": ("32x32", 0.01, 0.79),
    "SSD MobileNet-v1": ("300x300", 0.98, 4.23),
    "YOLOv3": ("224x224", 38.97, 62.00),
    "TinyYolo": ("224x224", 5.56, 15.87),
    "C3D": ("12x112x112", 57.99, 89.00),
}

# Models whose printed "FLOP" follows DarkNet/Caffe's 2-ops-per-MAC
# convention; our MAC counts are expected to be ~half the printed value.
DOUBLE_COUNTED_FLOPS = ("YOLOv3", "C3D")

# Known Table I irregularities (documented in EXPERIMENTS.md).
TABLE1_KNOWN_DISCREPANCIES = ("AlexNet", "TinyYolo", "VGG-S 32x32", "CifarNet 32x32")

# -------------------------------------------------------------- Table III
# device -> (idle watts, average watts under DNN load)
TABLE3_POWER_W: dict[str, tuple[float, float]] = {
    "Raspberry Pi 3B": (1.33, 2.73),
    "Jetson TX2": (1.90, 9.65),
    "Jetson Nano": (1.25, 4.58),
    "EdgeTPU": (3.24, 4.14),
    "Movidius NCS": (0.36, 1.52),
    "PYNQ-Z1": (2.65, 5.24),
    "Xeon E5-2696 v4": (70.0, 300.0),
    "GTX Titan X": (15.0, 100.0),
    "Titan Xp": (55.0, 120.0),
    "RTX 2080": (39.0, 150.0),
}

# --------------------------------------------------------------- Table VI
# device -> (has heatsink, has fan, idle surface temperature degC)
TABLE6_COOLING: dict[str, tuple[bool, bool, float]] = {
    "Raspberry Pi 3B": (False, False, 43.3),
    "Jetson TX2": (True, True, 32.4),
    "Jetson Nano": (True, True, 35.2),
    "EdgeTPU": (True, False, 33.9),
    "Movidius NCS": (True, False, 25.8),
}

# ---------------------------------------------------------------- Table V
# Expected status symbols, exactly as reproduced by
# repro.frameworks.compat (paper symbols mapped: check=+, diamond=^, O=O,
# triangle=4, double caret=^^).
TABLE5_EXPECTED: dict[str, dict[str, str]] = {
    "ResNet-18": {"Raspberry Pi 3B": "+", "Jetson TX2": "+", "Jetson Nano": "+",
                  "EdgeTPU": "4", "Movidius NCS": "+", "PYNQ-Z1": "+"},
    "ResNet-50": {"Raspberry Pi 3B": "+", "Jetson TX2": "+", "Jetson Nano": "+",
                  "EdgeTPU": "+", "Movidius NCS": "+", "PYNQ-Z1": "^^"},
    "MobileNet-v2": {"Raspberry Pi 3B": "+", "Jetson TX2": "+", "Jetson Nano": "+",
                     "EdgeTPU": "+", "Movidius NCS": "+", "PYNQ-Z1": "^^"},
    "Inception-v4": {"Raspberry Pi 3B": "+", "Jetson TX2": "+", "Jetson Nano": "+",
                     "EdgeTPU": "+", "Movidius NCS": "+", "PYNQ-Z1": "^^"},
    "AlexNet": {"Raspberry Pi 3B": "^", "Jetson TX2": "+", "Jetson Nano": "+",
                "EdgeTPU": "4", "Movidius NCS": "+", "PYNQ-Z1": "^^"},
    "VGG16": {"Raspberry Pi 3B": "^", "Jetson TX2": "+", "Jetson Nano": "+",
              "EdgeTPU": "+", "Movidius NCS": "+", "PYNQ-Z1": "^^"},
    "SSD MobileNet-v1": {"Raspberry Pi 3B": "O", "Jetson TX2": "+", "Jetson Nano": "+",
                         "EdgeTPU": "+", "Movidius NCS": "+", "PYNQ-Z1": "^^"},
    "TinyYolo": {"Raspberry Pi 3B": "+", "Jetson TX2": "+", "Jetson Nano": "+",
                 "EdgeTPU": "4", "Movidius NCS": "+", "PYNQ-Z1": "^^"},
    "C3D": {"Raspberry Pi 3B": "^", "Jetson TX2": "+", "Jetson Nano": "+",
            "EdgeTPU": "4", "Movidius NCS": "O", "PYNQ-Z1": "^^"},
}

# ----------------------------------------------------------- Figure 2
# Best-framework time per inference (seconds); None where the published
# scan is not legible.
FIG2_MODELS = ("ResNet-18", "ResNet-50", "MobileNet-v2", "Inception-v4",
               "AlexNet", "VGG16", "SSD MobileNet-v1", "TinyYolo", "C3D")
FIG2_BEST_S: dict[str, dict[str, float | None]] = {
    "Raspberry Pi 3B": {
        "ResNet-18": 0.870, "ResNet-50": 2.460, "MobileNet-v2": 0.480,
        "Inception-v4": 5.510, "AlexNet": 2.8017, "VGG16": 16.485,
        "SSD MobileNet-v1": None, "TinyYolo": 3.246, "C3D": None,
    },
    "Jetson TX2": {
        "ResNet-18": 0.0265, "ResNet-50": 0.0543, "MobileNet-v2": 0.0401,
        "Inception-v4": 0.1062, "AlexNet": 0.0156, "VGG16": 0.0877,
        "SSD MobileNet-v1": 0.0416, "TinyYolo": 0.1079, "C3D": 0.1968,
    },
    "Jetson Nano": {
        "ResNet-18": 0.023, "ResNet-50": 0.032, "MobileNet-v2": 0.018,
        "Inception-v4": 0.095, "AlexNet": 0.046, "VGG16": 0.092,
        "SSD MobileNet-v1": 0.032, "TinyYolo": 0.042, "C3D": 0.229,
    },
    "EdgeTPU": {
        "ResNet-18": None, "ResNet-50": 0.065, "MobileNet-v2": 0.0029,
        "Inception-v4": 0.1025, "AlexNet": None, "VGG16": 0.365,
        "SSD MobileNet-v1": 0.016, "TinyYolo": None, "C3D": None,
    },
    "Movidius NCS": {
        "ResNet-18": 0.1019, "ResNet-50": 0.1999, "MobileNet-v2": 0.051,
        "Inception-v4": 0.6326, "AlexNet": 0.0911, "VGG16": None,
        "SSD MobileNet-v1": 0.0871, "TinyYolo": None, "C3D": None,
    },
    "PYNQ-Z1": {
        "ResNet-18": 0.1861, "ResNet-50": None, "MobileNet-v2": None,
        "Inception-v4": None, "AlexNet": None, "VGG16": None,
        "SSD MobileNet-v1": None, "TinyYolo": None, "C3D": None,
    },
}

# ----------------------------------------------------------- Figure 5
# Profile fraction targets per (device, framework): bucket -> fraction.
FIG5_FRACTIONS: dict[tuple[str, str], dict[str, float]] = {
    ("Raspberry Pi 3B", "PyTorch"): {"conv2d": 0.810, "batch_norm": 0.119},
    ("Raspberry Pi 3B", "TensorFlow"): {
        "base_layer": 0.507, "Library Loading": 0.137,
        "TF_SessionRunCallable": 0.128, "_initialize_variable": 0.081,
        "TF_SessionMakeCallable": 0.057, "session.__init__": 0.037,
        "layers & weights": 0.053,
    },
    ("Jetson TX2", "PyTorch"): {
        "_C._TensorBase.to()": 0.394, "conv2d": 0.228,
        "<built-in import>": 0.130, "forward": 0.081, "linear": 0.061,
        "batch_norm": 0.031, "randn": 0.041, "model.__init__": 0.034,
    },
    ("Jetson TX2", "TensorFlow"): {
        "TF_SessionRunCallable": 0.343, "base_layer": 0.382,
        "Library Loading": 0.096, "_initialize_variable": 0.078,
        "TF_SessionMakeCallable": 0.032, "layers & weights": 0.070,
    },
}
FIG5_RUNS = {"Raspberry Pi 3B": 30, "Jetson TX2": 1000}
# Section VI-B3 headline: PyTorch on RPi spends 96.15% in compute-related
# functions, conv2d alone 80.95%.
FIG5_PT_RPI_COMPUTE_FRACTION = 0.9615

# ----------------------------------------------------------- Figures 6-8
FIG6_MODELS = ("ResNet-50", "MobileNet-v2", "VGG16", "VGG19")
FIG6_GTX_S: dict[str, dict[str, float | None]] = {
    # Figure 6's absolute values are not legible in the scan; the finding
    # is the shape: PyTorch beats TensorFlow on the HPC GPU (speedup >1).
    "PyTorch": {m: None for m in FIG6_MODELS},
    "TensorFlow": {m: None for m in FIG6_MODELS},
}

FIG7_MODELS = FIG2_MODELS
FIG7_NANO_S = {
    "PyTorch": dict(zip(FIG7_MODELS, (0.1413, 0.2150, 0.1184, 0.2925, 0.1321,
                                      0.2907, 0.1917, 0.1238, 0.5554))),
    "TensorRT": dict(zip(FIG7_MODELS, (0.023, 0.032, 0.018, 0.095, 0.046,
                                       0.092, 0.032, 0.042, 0.229))),
}
FIG7_AVG_SPEEDUP = 4.1

FIG8_MODELS = ("ResNet-18", "ResNet-50", "ResNet-101", "MobileNet-v2", "Inception-v4")
FIG8_RPI_S = {
    "PyTorch": dict(zip(FIG8_MODELS, (6.57, 8.30, 15.32, 8.28, 13.84))),
    "TensorFlow": dict(zip(FIG8_MODELS, (0.99, 3.06, 13.32, 1.40, 8.87))),
    "TFLite": dict(zip(FIG8_MODELS, (0.87, 2.46, 8.86, 0.48, 5.51))),
}
FIG8_SPEEDUP_OVER_TF = 1.58
FIG8_SPEEDUP_OVER_PT = 4.53

# ---------------------------------------------------------- Figures 9-10
FIG9_MODELS = ("ResNet-18", "ResNet-50", "ResNet-101", "MobileNet-v2",
               "Inception-v4", "AlexNet", "VGG16", "VGG19",
               "VGG-S 224x224", "VGG-S 32x32", "YOLOv3", "TinyYolo", "C3D")
FIG9_PLATFORMS = ("Jetson TX2", "Xeon E5-2696 v4", "GTX Titan X", "Titan Xp", "RTX 2080")
FIG10_GEOMEAN_SPEEDUP = 2.99  # "the average speedup over Jetson TX2 ... is only 3x"

# ---------------------------------------------------------- Figure 11
# Energy per inference in joules; from Section VI-E's prose.
FIG11_MODELS = ("ResNet-18", "ResNet-50", "MobileNet-v2", "Inception-v4")
FIG11_ENERGY_J: dict[tuple[str, str], float] = {
    ("GTX Titan X", "ResNet-18"): 1.0,
    ("GTX Titan X", "Inception-v4"): 5.0,
    ("Jetson TX2", "ResNet-18"): 0.3,
    ("Jetson TX2", "Inception-v4"): 1.0,
    ("Jetson Nano", "ResNet-18"): 0.084,
    ("Jetson Nano", "Inception-v4"): 0.5,
    ("EdgeTPU", "MobileNet-v2"): 0.011,
    ("Movidius NCS", "MobileNet-v2"): 0.066,
    ("Movidius NCS", "Inception-v4"): 1.0,
}

# ---------------------------------------------------------- Figure 13
FIG13_MODELS = ("ResNet-18", "ResNet-50", "MobileNet-v2", "Inception-v4", "TinyYolo")
FIG13_BARE_S = dict(zip(FIG13_MODELS, (1.01, 3.15, 1.07, 9.31, 0.96)))
FIG13_DOCKER_S = dict(zip(FIG13_MODELS, (1.06, 3.18, 1.10, 9.54, 0.96)))
FIG13_MAX_OVERHEAD = 0.05  # "within 5%, in all cases"

# ---------------------------------------------------------- Figure 14
FIG14_DEVICES = ("Raspberry Pi 3B", "Jetson Nano", "Jetson TX2", "EdgeTPU", "Movidius NCS")
FIG14_MODEL = "Inception-v4"
# Qualitative expectations from the figure annotations and Section VI-F.
FIG14_EXPECTATIONS = {
    "Raspberry Pi 3B": "device shutdown",
    "Jetson TX2": "fan working",
    "Jetson Nano": "fan working",
    "EdgeTPU": "steady",
    "Movidius NCS": "lowest variation",
}
