"""Experiment harness: one generator per paper table/figure.

``EXPERIMENT_REGISTRY`` maps ids ("fig02", "table5", ...) to experiments;
each returns a :class:`~repro.core.result.ResultTable` carrying measured
values next to the paper-reported references from
:mod:`repro.harness.paper_data`.
"""

from repro.harness.registry import EXPERIMENT_REGISTRY, list_experiments, run_experiment
from repro.harness.report import render_table


def run_sweep(*args, **kwargs):
    """Lazy alias for :func:`repro.harness.sweep_runner.run_sweep`."""
    from repro.harness.sweep_runner import run_sweep as _run_sweep

    return _run_sweep(*args, **kwargs)


__all__ = [
    "EXPERIMENT_REGISTRY",
    "list_experiments",
    "render_table",
    "run_experiment",
    "run_sweep",
]
