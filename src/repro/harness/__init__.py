"""Experiment harness: one generator per paper table/figure.

``EXPERIMENT_REGISTRY`` maps ids ("fig02", "table5", ...) to experiments;
each returns a :class:`~repro.core.result.ResultTable` carrying measured
values next to the paper-reported references from
:mod:`repro.harness.paper_data`.
"""

from repro.harness.registry import EXPERIMENT_REGISTRY, list_experiments, run_experiment
from repro.harness.report import render_table

__all__ = [
    "EXPERIMENT_REGISTRY",
    "list_experiments",
    "render_table",
    "run_experiment",
]
