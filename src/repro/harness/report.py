"""ASCII rendering of result tables.

Every benchmark prints its table through this module so paper-vs-measured
comparisons look identical across experiments.
"""

from __future__ import annotations

from typing import Any

from repro.core.result import ResultTable

LABEL_WIDTH = 22
CELL_WIDTH = 14


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(table: ResultTable) -> str:
    """Render a ResultTable as fixed-width ASCII with title and notes."""
    header = f"{'':{LABEL_WIDTH}s}" + "".join(
        f"{column:>{CELL_WIDTH}s}" for column in table.columns
    )
    separator = "-" * len(header)
    lines = [table.title, separator, header, separator]
    for row in table.rows:
        cells = "".join(
            f"{_format_cell(row.get(column)):>{CELL_WIDTH}s}" for column in table.columns
        )
        lines.append(f"{row.label[:LABEL_WIDTH]:{LABEL_WIDTH}s}" + cells)
    lines.append(separator)
    if table.caption:
        lines.append(table.caption)
    for note in table.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def ratio_or_none(measured: float | None, reference: float | None) -> float | None:
    """measured/reference, or None when either side is unavailable."""
    if measured is None or reference in (None, 0):
        return None
    return measured / reference


def render_markdown(table: ResultTable) -> str:
    """Render a ResultTable as GitHub-flavoured markdown."""
    header = "| | " + " | ".join(table.columns) + " |"
    divider = "|---" * (len(table.columns) + 1) + "|"
    lines = [header, divider]
    for row in table.rows:
        cells = " | ".join(_format_cell(row.get(column)) for column in table.columns)
        lines.append(f"| {row.label} | {cells} |")
    if table.caption:
        lines.append("")
        lines.append(f"*{table.caption}*")
    for note in table.notes:
        lines.append("")
        lines.append(f"> {note}")
    return "\n".join(lines)


def render_csv(table: ResultTable) -> str:
    """Render a ResultTable as CSV (label column first)."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["label", *table.columns])
    for row in table.rows:
        writer.writerow([row.label] + [
            "" if row.get(column) is None else row.get(column)
            for column in table.columns
        ])
    return buffer.getvalue()
