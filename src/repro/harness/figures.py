"""Figure generators: one function per paper figure.

Each returns a :class:`ResultTable` holding measured values and, where the
paper's numbers are legible, the reference values and their ratio.  These
functions are what the ``benchmarks/`` suite drives.
"""

from __future__ import annotations

from repro.core.errors import ReproError
from repro.core.result import ResultTable, geometric_mean
from repro.engine import InferenceSession
from repro.harness import paper_data as paper
from repro.harness.report import ratio_or_none
from repro.hardware import load_device
from repro.measurement import EnergyMeter, InferenceTimer, ThermalCamera
from repro.models import load_model
from repro.profiling import profile_stack
from repro.runtime import BEST_FRAMEWORK_CANDIDATES, Scenario, default_runner

__all__ = [
    "BEST_FRAMEWORK_CANDIDATES",  # re-exported from repro.runtime
    "best_framework_latency",
    "build_session",
    "cell_timer",
    "measure_latency_s",
    "measurement_seed",
]

_RUNNER = default_runner()


# -- deprecated thin wrappers over repro.runtime -------------------------
# Every generator below routes through the Runner; these helpers remain
# only so external callers and older tests keep working.
def measurement_seed(model_name: str, device_name: str, framework_name: str) -> int:
    """Deprecated: use ``Scenario(...).seed`` (bit-identical)."""
    return Scenario(model_name, device_name, framework_name).seed


def cell_timer(model_name: str, device_name: str, framework_name: str) -> InferenceTimer:
    """Deprecated: use ``Runner.timer(scenario)``."""
    return _RUNNER.timer(Scenario(model_name, device_name, framework_name))


def measure_latency_s(model_name: str, device_name: str, framework_name: str,
                      use_timer: bool = True) -> float:
    """Deprecated: use ``Runner.measure(scenario)`` / ``Runner.run(scenario)``."""
    return _RUNNER.measure(Scenario(model_name, device_name, framework_name),
                           use_timer=use_timer)


def build_session(model_name: str, device_name: str, framework_name: str) -> InferenceSession:
    """Deprecated: use ``Runner.session(scenario)``."""
    return _RUNNER.session(Scenario(model_name, device_name, framework_name))


def best_framework_latency(model_name: str, device_name: str) -> tuple[str, float] | None:
    """(framework, seconds) of the fastest deployable framework, or None.

    Unknown devices raise a structured :class:`~repro.core.errors.ReproError`
    (an ``UnknownEntryError``) rather than a bare ``KeyError``.
    """
    return _RUNNER.best_latency(model_name, device_name)


# ------------------------------------------------------------------ Fig 1
def fig01_flop_per_param() -> ResultTable:
    table = ResultTable(
        "Figure 1: models sorted by FLOP/Param for one inference",
        ["flop_per_param", "paper_flop_per_param", "gflop", "params_m"],
        caption="FLOP counts one multiply-accumulate as one operation; the "
        "paper's YOLOv3/C3D entries use DarkNet's 2-ops convention.",
    )
    rows = []
    for model_name in paper.TABLE1_MODELS:
        graph = load_model(model_name)
        _input, gflop, params_m = paper.TABLE1_MODELS[model_name]
        rows.append((graph.flop_per_param, model_name, graph, gflop, params_m))
    for flop_per_param, model_name, graph, gflop, params_m in sorted(rows):
        table.add_row(
            model_name,
            flop_per_param=flop_per_param,
            paper_flop_per_param=gflop * 1e9 / (params_m * 1e6),
            gflop=graph.total_macs / 1e9,
            params_m=graph.total_params / 1e6,
        )
    return table


# ------------------------------------------------------------------ Fig 2
def fig02_best_framework() -> ResultTable:
    table = ResultTable(
        "Figure 2: time per inference on edge devices, best framework each",
        ["framework", "measured_ms", "paper_ms", "ratio"],
        caption="'-' in paper_ms: value not legible in the published scan, "
        "or not reported (Table V incompatibilities).",
    )
    for device_name, references in paper.FIG2_BEST_S.items():
        for model_name in paper.FIG2_MODELS:
            best = _RUNNER.best_latency(model_name, device_name)
            reference = references.get(model_name)
            if best is None:
                table.add_row(f"{device_name} / {model_name}", framework="(fails)",
                              measured_ms=None, paper_ms=_ms(reference), ratio=None)
                continue
            framework_name, latency = best
            table.add_row(
                f"{device_name} / {model_name}",
                framework=framework_name,
                measured_ms=latency * 1e3,
                paper_ms=_ms(reference),
                ratio=ratio_or_none(latency, reference),
            )
    return table


def _ms(seconds: float | None) -> float | None:
    return None if seconds is None else seconds * 1e3


# -------------------------------------------------------------- Figs 3, 4
FIG34_MODELS = ("ResNet-50", "ResNet-101", "Xception", "MobileNet-v2",
                "Inception-v4", "AlexNet", "VGG16")
FIG34_FRAMEWORKS = ("DarkNet", "Caffe", "TensorFlow", "PyTorch")


def _cross_framework(device_name: str, title: str, unit_scale: float,
                     unit_name: str) -> ResultTable:
    table = ResultTable(
        title,
        [f"{fw} ({unit_name})" for fw in FIG34_FRAMEWORKS],
        caption="'-' marks the paper's 'Not Available' (no implementation) "
        "or 'Memory Error' outcomes.",
    )
    for model_name in FIG34_MODELS:
        cells = {}
        for framework_name in FIG34_FRAMEWORKS:
            column = f"{framework_name} ({unit_name})"
            record = _RUNNER.run(Scenario(model_name, device_name, framework_name))
            cells[column] = None if record.failed else record.latency_s * unit_scale
        table.add_row(model_name, **cells)
    return table


def fig03_rpi_frameworks() -> ResultTable:
    return _cross_framework(
        "Raspberry Pi 3B",
        "Figure 3: time per inference on RPi across frameworks",
        1.0,
        "s",
    )


def fig04_tx2_frameworks() -> ResultTable:
    return _cross_framework(
        "Jetson TX2",
        "Figure 4: time per inference on Jetson TX2 across frameworks",
        1e3,
        "ms",
    )


# ------------------------------------------------------------------ Fig 5
def fig05_software_stack(model_name: str = "ResNet-18") -> ResultTable:
    table = ResultTable(
        "Figure 5: software-stack profiles (TF/PyTorch x RPi/TX2)",
        ["measured_fraction", "paper_fraction"],
        caption="Fractions of total cProfile time per function bucket; "
        "RPi profiled over 30 inferences, TX2 over 1000 (Section VI-B3).",
    )
    for (device_name, framework_name), targets in paper.FIG5_FRACTIONS.items():
        session = _RUNNER.session(Scenario(model_name, device_name, framework_name))
        profile = profile_stack(session, paper.FIG5_RUNS[device_name])
        fractions = profile.fractions()
        short = {"Raspberry Pi 3B": "RPi", "Jetson TX2": "TX2"}[device_name]
        for bucket, target in targets.items():
            table.add_row(
                f"{short}/{framework_name}: {bucket}",
                measured_fraction=fractions.get(bucket, 0.0),
                paper_fraction=target,
            )
    return table


# ------------------------------------------------------------------ Fig 6
def fig06_gtx_tf_vs_pytorch() -> ResultTable:
    table = ResultTable(
        "Figure 6: time per inference on GTX Titan X (TensorFlow vs PyTorch)",
        ["pytorch_ms", "tensorflow_ms", "speedup"],
        caption="Speedup = TensorFlow / PyTorch; the paper reports PyTorch "
        "faster across the board on HPC GPUs.",
    )
    for model_name in paper.FIG6_MODELS:
        pytorch = _RUNNER.measure(Scenario(model_name, "GTX Titan X", "PyTorch"))
        tensorflow = _RUNNER.measure(Scenario(model_name, "GTX Titan X", "TensorFlow"))
        table.add_row(
            model_name,
            pytorch_ms=pytorch * 1e3,
            tensorflow_ms=tensorflow * 1e3,
            speedup=tensorflow / pytorch,
        )
    return table


# ------------------------------------------------------------------ Fig 7
def fig07_nano_tensorrt() -> ResultTable:
    table = ResultTable(
        "Figure 7: Jetson Nano, PyTorch vs TensorRT",
        ["pytorch_ms", "tensorrt_ms", "speedup",
         "paper_pytorch_ms", "paper_tensorrt_ms", "paper_speedup"],
    )
    speedups = []
    for model_name in paper.FIG7_MODELS:
        pytorch = _RUNNER.measure(Scenario(model_name, "Jetson Nano", "PyTorch"))
        tensorrt = _RUNNER.measure(Scenario(model_name, "Jetson Nano", "TensorRT"))
        paper_pt = paper.FIG7_NANO_S["PyTorch"][model_name]
        paper_trt = paper.FIG7_NANO_S["TensorRT"][model_name]
        speedups.append(pytorch / tensorrt)
        table.add_row(
            model_name,
            pytorch_ms=pytorch * 1e3,
            tensorrt_ms=tensorrt * 1e3,
            speedup=pytorch / tensorrt,
            paper_pytorch_ms=paper_pt * 1e3,
            paper_tensorrt_ms=paper_trt * 1e3,
            paper_speedup=paper_pt / paper_trt,
        )
    table.add_note(
        f"average speedup {sum(speedups) / len(speedups):.2f}x "
        f"(paper: {paper.FIG7_AVG_SPEEDUP}x)"
    )
    return table


# ------------------------------------------------------------------ Fig 8
def fig08_rpi_tflite() -> ResultTable:
    table = ResultTable(
        "Figure 8: RPi, TensorFlow vs PyTorch vs TFLite",
        ["pytorch_s", "tensorflow_s", "tflite_s",
         "speedup_vs_tf", "speedup_vs_pt", "paper_tflite_s"],
    )
    tf_speedups, pt_speedups = [], []
    for model_name in paper.FIG8_MODELS:
        pytorch = _RUNNER.measure(Scenario(model_name, "Raspberry Pi 3B", "PyTorch"))
        tensorflow = _RUNNER.measure(Scenario(model_name, "Raspberry Pi 3B", "TensorFlow"))
        tflite = _RUNNER.measure(Scenario(model_name, "Raspberry Pi 3B", "TFLite"))
        tf_speedups.append(tensorflow / tflite)
        pt_speedups.append(pytorch / tflite)
        table.add_row(
            model_name,
            pytorch_s=pytorch,
            tensorflow_s=tensorflow,
            tflite_s=tflite,
            speedup_vs_tf=tensorflow / tflite,
            speedup_vs_pt=pytorch / tflite,
            paper_tflite_s=paper.FIG8_RPI_S["TFLite"][model_name],
        )
    table.add_note(
        f"average TFLite speedup over TF {sum(tf_speedups) / len(tf_speedups):.2f}x "
        f"(paper {paper.FIG8_SPEEDUP_OVER_TF}x), over PyTorch "
        f"{sum(pt_speedups) / len(pt_speedups):.2f}x (paper {paper.FIG8_SPEEDUP_OVER_PT}x)"
    )
    return table


# ------------------------------------------------------------- Figs 9, 10
def fig09_edge_vs_hpc() -> ResultTable:
    table = ResultTable(
        "Figure 9: edge vs HPC time per inference (PyTorch)",
        [f"{p} (ms)" for p in paper.FIG9_PLATFORMS],
    )
    for model_name in paper.FIG9_MODELS:
        cells = {}
        for platform in paper.FIG9_PLATFORMS:
            record = _RUNNER.run(Scenario(model_name, platform, "PyTorch"))
            cells[f"{platform} (ms)"] = None if record.failed else record.latency_s * 1e3
        table.add_row(model_name, **cells)
    return table


def fig10_speedup_over_tx2() -> ResultTable:
    table = ResultTable(
        "Figure 10: speedup over Jetson TX2 (PyTorch)",
        [f"{p} (x)" for p in paper.FIG9_PLATFORMS[1:]],
        caption=f"paper geomean across all models/platforms: "
        f"{paper.FIG10_GEOMEAN_SPEEDUP}x",
    )
    speedups = []
    for model_name in paper.FIG9_MODELS:
        baseline = _RUNNER.measure(Scenario(model_name, "Jetson TX2", "PyTorch"))
        cells = {}
        for platform in paper.FIG9_PLATFORMS[1:]:
            latency = _RUNNER.measure(Scenario(model_name, platform, "PyTorch"))
            speedup = baseline / latency
            speedups.append(speedup)
            cells[f"{platform} (x)"] = speedup
        table.add_row(model_name, **cells)
    table.add_note(f"measured geomean: {geometric_mean(speedups):.2f}x")
    return table


# ----------------------------------------------------------------- Fig 11
FIG11_PLATFORMS = ("Raspberry Pi 3B", "Jetson Nano", "Jetson TX2", "EdgeTPU",
                   "Movidius NCS", "GTX Titan X")


def fig11_energy() -> ResultTable:
    table = ResultTable(
        "Figure 11: energy per inference across platforms",
        ["framework", "energy_mj", "paper_mj"],
        caption="Energy = measured total device power x time per inference "
        "(log-scale bars in the paper).",
    )
    meter = EnergyMeter(seed=11)
    for device_name in FIG11_PLATFORMS:
        for model_name in paper.FIG11_MODELS:
            entry = _energy_entry(device_name, model_name, meter)
            reference = paper.FIG11_ENERGY_J.get((device_name, model_name))
            if entry is None:
                table.add_row(f"{device_name} / {model_name}", framework="(fails)",
                              energy_mj=None,
                              paper_mj=None if reference is None else reference * 1e3)
                continue
            framework_name, energy_j = entry
            table.add_row(
                f"{device_name} / {model_name}",
                framework=framework_name,
                energy_mj=energy_j * 1e3,
                paper_mj=None if reference is None else reference * 1e3,
            )
    return table


def _energy_entry(device_name: str, model_name: str, meter: EnergyMeter):
    entry = _RUNNER.first_session(model_name, device_name)
    if entry is None:
        return None
    framework_name, session = entry
    return framework_name, float(meter.measure(session))


# ----------------------------------------------------------------- Fig 12
def fig12_time_vs_power() -> ResultTable:
    table = ResultTable(
        "Figure 12: inference time vs active power (log-log scatter)",
        ["framework", "power_w", "latency_ms"],
        caption="Each row is one (platform, model) point; lower-left is "
        "fastest and most efficient.",
    )
    for device_name in FIG11_PLATFORMS:
        for model_name in paper.FIG2_MODELS:
            candidates = _RUNNER.candidates_for(device_name, default=("PyTorch",))
            for framework_name in candidates:
                record = _RUNNER.run(Scenario(model_name, device_name, framework_name),
                                     use_timer=False)
                if record.failed:
                    continue
                table.add_row(
                    f"{device_name} / {model_name}",
                    framework=framework_name,
                    power_w=record.power_w,
                    latency_ms=record.model_latency_s * 1e3,
                )
                break
    return table


# ----------------------------------------------------------------- Fig 13
def fig13_virtualization() -> ResultTable:
    table = ResultTable(
        "Figure 13: bare-metal vs Docker on RPi (TensorFlow)",
        ["bare_s", "docker_s", "slowdown", "paper_bare_s", "paper_docker_s"],
        caption="paper finding: overhead within 5% in all cases",
    )
    for model_name in paper.FIG13_MODELS:
        scenario = Scenario(model_name, "Raspberry Pi 3B", "TensorFlow")
        bare = _RUNNER.run(scenario, use_timer=False)
        docker = _RUNNER.run(
            Scenario(model_name, "Raspberry Pi 3B", "TensorFlow", containerized=True),
            use_timer=False)
        table.add_row(
            model_name,
            bare_s=bare.latency_s,
            docker_s=docker.latency_s,
            slowdown=docker.container_overhead,
            paper_bare_s=paper.FIG13_BARE_S[model_name],
            paper_docker_s=paper.FIG13_DOCKER_S[model_name],
        )
    return table


# ----------------------------------------------------------------- Fig 14
def fig14_temperature_curves(sample_every_s: float = 60.0) -> ResultTable:
    """The actual Figure 14 curves: surface temperature vs time per device.

    Long-format table (one row per sample) so the curves themselves — the
    warm-up exponential, the fan kink, the Raspberry Pi's shutdown — are
    reproduced, not just their endpoints.
    """
    table = ResultTable(
        "Figure 14 (curves): surface temperature vs time under Inception-v4",
        ["device", "time_s", "surface_c", "fan_on", "shutdown"],
        caption=f"Sampled every {sample_every_s:.0f} s of simulated soak.",
    )
    camera = ThermalCamera(seed=140)
    for device_name in paper.FIG14_DEVICES:
        device = load_device(device_name)
        entry = _energy_entry(device_name, paper.FIG14_MODEL, EnergyMeter())
        assert entry is not None
        framework_name, _energy = entry
        session = _RUNNER.session(Scenario(paper.FIG14_MODEL, device_name, framework_name))
        power = device.power.power(session.utilization)
        simulator = device.thermal_simulator()
        simulator.temperature_c = device.thermal.steady_state_c(device.power.idle_w)
        readings = camera.record_soak(simulator, power, dt_s=5.0)
        fan_time = _first_event_time(simulator, "fan_on")
        shutdown_time = _first_event_time(simulator, "shutdown")
        next_sample = 0.0
        for reading in readings:
            if reading.time_s + 1e-9 < next_sample and reading is not readings[-1]:
                continue
            table.add_row(
                f"{device_name} @ {reading.time_s:.0f}s",
                device=device_name,
                time_s=reading.time_s,
                surface_c=reading.surface_c,
                fan_on=reading.time_s >= fan_time,
                shutdown=reading.time_s >= shutdown_time,
            )
            next_sample += sample_every_s
    return table


def _first_event_time(simulator, kind: str) -> float:
    for event in simulator.events:
        if event.kind == kind:
            return event.time_s
    return float("inf")


def fig14_temperature() -> ResultTable:
    table = ResultTable(
        "Figure 14: temperature behaviour while running Inception-v4",
        ["idle_surface_c", "steady_surface_c", "events", "paper_idle_c", "expectation"],
        caption="Surface temperatures as a thermal camera sees them; events "
        "from the RC simulation (fan activation, shutdown).",
    )
    camera = ThermalCamera(seed=14)
    for device_name in paper.FIG14_DEVICES:
        device = load_device(device_name)
        entry = _energy_entry(device_name, paper.FIG14_MODEL, EnergyMeter())
        if entry is None:
            # C3D-style failures cannot happen here: Inception-v4 deploys on
            # every Figure 14 device (Table V).
            raise ReproError(f"{paper.FIG14_MODEL} failed to deploy on {device_name}")
        framework_name, _energy = entry
        session = _RUNNER.session(Scenario(paper.FIG14_MODEL, device_name, framework_name))
        power = device.power.power(session.utilization)
        simulator = device.thermal_simulator()
        simulator.temperature_c = device.thermal.steady_state_c(device.power.idle_w)
        readings = camera.record_soak(simulator, power)
        events = ", ".join(f"{e.kind}@{e.temperature_c:.0f}C" for e in simulator.events) or "steady"
        table.add_row(
            device_name,
            idle_surface_c=readings[0].surface_c,
            steady_surface_c=readings[-1].surface_c,
            events=events,
            paper_idle_c=paper.TABLE6_COOLING[device_name][2],
            expectation=paper.FIG14_EXPECTATIONS[device_name],
        )
    return table
