"""Extension experiments beyond the paper's published figures.

Six studies that extend the characterization along axes the paper motivates
but does not quantify: batch-size crossover (Section VI-C's thesis),
pruning exploitation (Table II), datatype sensitivity, recurrent models
(Section II future work), thermally-sustained throughput (Figure 14 closed
into performance), and the Pareto frontier of Figure 12.
"""

from __future__ import annotations

import dataclasses

from repro.analysis import (
    ParetoPoint,
    batch_size_sweep,
    dtype_sweep,
    pareto_frontier,
    simulate_sustained,
    sparsity_sweep,
)
from repro.core.result import ResultTable
from repro.engine import InferenceSession
from repro.frameworks import load_framework
from repro.harness.figures import fig12_time_vs_power
from repro.hardware import load_device
from repro.models import load_model
from repro.runtime import Scenario, default_runner

_RUNNER = default_runner()

RNN_MODELS = ("CharRNN-LSTM", "LSTM-PTB", "GRU-Encoder")


def ext_batch_crossover() -> ResultTable:
    """Per-inference latency of ResNet-50 vs batch size, edge vs HPC.

    Quantifies the paper's core Section VI-C argument: HPC platforms are
    throughput machines, so batching shrinks their per-inference cost far
    faster than the TX2's — the Xeon crosses below the TX2 within a few
    batches even though it loses at batch 1.
    """
    table = batch_size_sweep(
        "ResNet-50",
        ("Jetson TX2", "Xeon E5-2696 v4", "GTX Titan X", "RTX 2080"),
    )
    tx2 = {c: v for c, v in zip(table.columns, [table.row("Jetson TX2").get(c) for c in table.columns])}
    xeon_row = table.row("Xeon E5-2696 v4")
    crossover = next(
        (column for column in table.columns
         if xeon_row.get(column) is not None and xeon_row[column] < tx2[column]),
        None,
    )
    table.add_note(
        f"Xeon crosses below Jetson TX2 at {crossover or 'no batch in range'} "
        "(it loses the single-batch contest the paper studies)"
    )
    return table


def ext_pruning_exploitation() -> ResultTable:
    """Latency vs weight sparsity: exploiters vs non-exploiters (Table II)."""
    table = sparsity_sweep(
        "ResNet-50", "Raspberry Pi 3B",
        framework_names=("TensorFlow", "TFLite", "PyTorch", "Caffe"),
    )
    return table


def ext_dtype_sensitivity() -> ResultTable:
    """TensorRT on Jetson Nano across FP32/FP16/INT8 deployments."""
    table = dtype_sweep("ResNet-50", "Jetson Nano", "TensorRT")
    return table


def ext_rnn_models() -> ResultTable:
    """Recurrent models across platforms — the paper's future work.

    The headline: the sequential recurrence cannot fill wide units, so the
    effective MAC rate on GPUs collapses relative to CNNs.
    """
    table = ResultTable(
        "Extension: recurrent models (LSTM/GRU) across platforms",
        ["device", "framework", "latency_ms", "gmacs_per_s", "peak_fraction"],
        caption="peak_fraction = achieved MAC rate over the unit's peak; "
        "compare with ~0.2 for CNNs on the same stacks.",
    )
    for model_name in RNN_MODELS:
        for device_name in ("Raspberry Pi 3B", "Jetson TX2", "Jetson Nano",
                            "Xeon E5-2696 v4", "RTX 2080"):
            entry = _first_deployable(model_name, device_name)
            if entry is None:
                table.add_row(f"{model_name} @ {device_name}", device=device_name,
                              framework="(fails)", latency_ms=None,
                              gmacs_per_s=None, peak_fraction=None)
                continue
            framework_name, session = entry
            macs = session.deployed.graph.total_macs
            rate = macs / session.latency_s
            peak = session.deployed.unit.peak(session.deployed.weight_dtype)
            table.add_row(
                f"{model_name} @ {device_name}",
                device=device_name,
                framework=framework_name,
                latency_ms=session.latency_s * 1e3,
                gmacs_per_s=rate / 1e9,
                peak_fraction=rate / peak,
            )
    return table


def _first_deployable(model_name: str, device_name: str):
    return _RUNNER.first_session(model_name, device_name,
                                 default=("PyTorch", "TensorFlow"))


def ext_sustained_throughput() -> ResultTable:
    """Burst vs thermally-sustained throughput (Figure 14 made quantitative).

    Includes a DVFS-enabled Raspberry Pi variant: with firmware throttling
    at 60 degC the device survives the soak at reduced speed instead of
    tripping its shutdown limit.
    """
    table = ResultTable(
        "Extension: burst vs sustained throughput under Inception-v4",
        ["framework", "burst_fps", "sustained_fps", "slowdown", "outcome"],
        caption="30-minute soak at 22 degC ambient; sustained_fps = 0 means "
        "thermal shutdown.",
    )
    for device_name in ("Raspberry Pi 3B", "Jetson TX2", "Jetson Nano",
                        "EdgeTPU", "Movidius NCS"):
        entry = _first_deployable("Inception-v4", device_name)
        assert entry is not None  # Inception-v4 deploys on all five (Table V)
        framework_name, session = entry
        result = simulate_sustained(session)
        outcome = "shutdown" if result.shutdown else (
            "throttled" if result.throttle_events else "stable")
        table.add_row(
            device_name,
            framework=framework_name,
            burst_fps=result.burst_fps,
            sustained_fps=result.sustained_fps,
            slowdown=result.slowdown,
            outcome=outcome,
        )

    # DVFS variant: the same Raspberry Pi with the firmware soft limit on.
    rpi = load_device("Raspberry Pi 3B")
    throttling_spec = dataclasses.replace(
        rpi.thermal, throttle_c=60.0, throttle_stop_c=55.0, throttle_clock_factor=0.6)
    throttling_rpi = dataclasses.replace(rpi, thermal=throttling_spec)
    deployed = load_framework("TFLite").deploy(load_model("Inception-v4"), throttling_rpi)
    # Deploys onto a mutated (DVFS-limited) device the Runner cannot name.
    result = simulate_sustained(InferenceSession(deployed))  # repro: allow[ARCH001]
    table.add_row(
        "Raspberry Pi 3B (DVFS)",
        framework="TFLite",
        burst_fps=result.burst_fps,
        sustained_fps=result.sustained_fps,
        slowdown=result.slowdown,
        outcome="shutdown" if result.shutdown else "throttled",
    )
    return table


def ext_cloud_edge_split() -> ResultTable:
    """Neurosurgeon-style cloud-edge split (related-work line, built).

    For each (model, edge device, link): where does the latency-optimal cut
    land — fully local, fully offloaded, or an interior split?  Reproduces
    the offloading trade-off the paper's introduction frames (privacy and
    connectivity aside, offloading only wins when the link can carry it).
    """
    from repro.distribution import SplitPlanner, load_link

    table = ResultTable(
        "Extension: latency-optimal cloud-edge split (remote = GTX Titan X)",
        ["link", "all_edge_ms", "all_remote_ms", "best_ms", "best_cut", "decision"],
    )
    remote_device = load_device("GTX Titan X")
    for model_name, edge_name, edge_framework in (
        ("VGG16", "Raspberry Pi 3B", "PyTorch"),
        ("MobileNet-v2", "Jetson TX2", "PyTorch"),
        ("ResNet-50", "Jetson TX2", "PyTorch"),
    ):
        graph = load_model(model_name)
        edge = load_framework(edge_framework).deploy(graph, load_device(edge_name))
        remote = load_framework("PyTorch").deploy(graph, remote_device)
        base = SplitPlanner(edge, remote, load_link("ethernet"))
        for link_name in ("ethernet", "wifi", "bluetooth"):
            # Reprice the shared per-op timings per link instead of
            # rebuilding two engine sessions each time.
            planner = (base if link_name == "ethernet"
                       else base.with_link(load_link(link_name)))
            best = planner.best()
            if best.cut.index == 0:
                decision = "offload all"
            elif best.is_all_edge:
                decision = "stay local"
            else:
                decision = "split"
            table.add_row(
                f"{model_name} @ {edge_name} / {link_name}",
                link=link_name,
                all_edge_ms=planner.all_edge().total_s * 1e3,
                all_remote_ms=planner.all_remote().total_s * 1e3,
                best_ms=best.total_s * 1e3,
                best_cut=best.cut.after_op or "(input)",
                decision=decision,
            )
    return table


def ext_collaborative_pipeline() -> ResultTable:
    """Model-parallel pipelining across Raspberry Pis (the authors' own
    collaborative-IoT research line, built on this engine)."""
    from repro.distribution import load_link, partition_pipeline

    table = ResultTable(
        "Extension: TinyYolo pipelined across Raspberry Pis (WiFi)",
        ["throughput_fps", "speedup", "bottleneck_ms", "end_to_end_ms"],
        caption="Throughput scales until one indivisible convolution becomes "
        "the bottleneck stage.",
    )
    deployed = load_framework("TensorFlow").deploy(
        load_model("TinyYolo"), load_device("Raspberry Pi 3B"))
    link = load_link("wifi")
    baseline = partition_pipeline(deployed, 1, link).throughput_fps
    for num_devices in (1, 2, 3, 4, 6, 8):
        plan = partition_pipeline(deployed, num_devices, link)
        table.add_row(
            f"{num_devices} device(s)",
            throughput_fps=plan.throughput_fps,
            speedup=plan.throughput_fps / baseline,
            bottleneck_ms=plan.bottleneck_s * 1e3,
            end_to_end_ms=plan.pipeline_latency_s * 1e3,
        )
    return table


def ext_serving_deadlines() -> ResultTable:
    """Streaming-camera serving: queueing turns latency into percentiles.

    The paper's single-batch framing comes from "the limited number of
    available requests in a given time"; this extension makes the request
    process explicit.  A 10 fps camera feeds each device; the FIFO serving
    simulation reports p99 end-to-end latency and whether a 150 ms deadline
    holds once queueing is accounted for.
    """
    from repro.workloads import PeriodicArrivals, simulate_serving

    table = ResultTable(
        "Extension: 10 fps MobileNet-v2 stream, FIFO serving per device",
        ["framework", "service_ms", "utilization", "p99_ms", "meets_150ms"],
        caption="Devices slower than the frame period saturate: their queue "
        "(and p99) grows without bound.",
    )
    arrivals = PeriodicArrivals(10.0).generate(60.0)
    for device_name in ("Raspberry Pi 3B", "Jetson TX2", "Jetson Nano",
                        "EdgeTPU", "Movidius NCS"):
        entry = _first_deployable("MobileNet-v2", device_name)
        assert entry is not None
        framework_name, session = entry
        stats = simulate_serving(arrivals, session.latency_s,
                                 service_jitter_fraction=0.02, seed=9)
        table.add_row(
            device_name,
            framework=framework_name,
            service_ms=session.latency_s * 1e3,
            utilization=stats.utilization,
            p99_ms=stats.p99_sojourn_s * 1e3,
            meets_150ms=stats.meets_deadline(0.150),
        )
    return table


def ext_power_modes() -> ResultTable:
    """Jetson DVFS modes: the latency/power/energy trade the paper's
    default-mode measurements sit on one side of."""
    from repro.hardware import list_operating_points
    from repro.measurement.energy import EnergyMeter

    table = ResultTable(
        "Extension: Jetson power modes running ResNet-50",
        ["mode", "latency_ms", "power_w", "energy_mj"],
        caption="Budget modes slow inference but can improve energy per "
        "inference (voltage scaling beats the stretched runtime).",
    )
    for device_name, framework_name in (("Jetson TX2", "PyTorch"),
                                        ("Jetson Nano", "TensorRT")):
        for point in list_operating_points(device_name):
            record = _RUNNER.run(
                Scenario("ResNet-50", device_name, framework_name,
                         power_mode=point.name),
                use_timer=False, energy_meter=EnergyMeter())
            table.add_row(
                f"{device_name} @ {point.name}",
                mode=point.name,
                latency_ms=record.model_latency_s * 1e3,
                power_w=record.power_w,
                energy_mj=record.energy_j * 1e3,
            )
    return table


def ext_batch_serving() -> ResultTable:
    """Dynamic batching under load: the cloud-serving regime quantified.

    A Poisson request stream hits an RTX 2080 serving ResNet-50.  The
    single-batch server (the edge regime the paper studies) saturates just
    above 120 req/s; the dynamic-batching server rides the engine's batch
    amortization far past it.
    """
    from repro.workloads import (
        PoissonArrivals,
        batched_latency_fn,
        simulate_batch_serving,
    )

    table = ResultTable(
        "Extension: ResNet-50 on RTX 2080, FIFO vs dynamic batching (max 32)",
        ["rate_rps", "p99_ms_batch1", "p99_ms_batch32", "mean_batch",
         "util_batch1", "util_batch32"],
        caption="p99 end-to-end latency per arrival rate; batch-1 capacity "
        "is ~120 req/s.",
    )
    deployed = load_framework("PyTorch").deploy(
        load_model("ResNet-50"), load_device("RTX 2080"))
    batch_time = batched_latency_fn(deployed, max_batch=32)
    for rate in (50.0, 100.0, 200.0, 400.0):
        arrivals = PoissonArrivals(rate, seed=21).generate(20.0)
        single = simulate_batch_serving(arrivals, batch_time, 1)
        batched = simulate_batch_serving(arrivals, batch_time, 32)
        table.add_row(
            f"{rate:.0f} req/s",
            rate_rps=rate,
            p99_ms_batch1=single.p99_sojourn_s * 1e3,
            p99_ms_batch32=batched.p99_sojourn_s * 1e3,
            mean_batch=batched.mean_batch_size,
            util_batch1=single.utilization,
            util_batch32=batched.utilization,
        )
    return table


def ext_pareto_frontier() -> ResultTable:
    """Which Figure 12 points are Pareto-optimal in (latency, power)?"""
    scatter = fig12_time_vs_power()
    points = [
        ParetoPoint(label=row.label, latency_s=row["latency_ms"] / 1e3,
                    power_w=row["power_w"])
        for row in scatter
    ]
    frontier = pareto_frontier(points)
    frontier_labels = {p.label for p in frontier}
    table = ResultTable(
        "Extension: Pareto frontier of the Figure 12 scatter",
        ["latency_ms", "power_w", "device"],
        caption="Non-dominated (latency, power) configurations, fastest first.",
    )
    for point in frontier:
        table.add_row(
            point.label,
            latency_ms=point.latency_s * 1e3,
            power_w=point.power_w,
            device=point.label.split(" / ")[0],
        )
    devices_on_frontier = {p.label.split(" / ")[0] for p in frontier}
    table.add_note(f"devices on the frontier: {', '.join(sorted(devices_on_frontier))}")
    table.add_note(f"{len(frontier_labels)} of {len(points)} points are non-dominated")
    return table
