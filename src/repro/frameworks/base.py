"""Framework abstraction.

A :class:`Framework` turns a zoo graph into a :class:`DeployedModel` on a
device: it selects the compute unit, applies the graph optimizations it
actually implements (Table II), picks the deployment datatype, plans memory
(including the dynamic-graph paging fallback of Table V), and resolves its
software-stack overheads scaled to the target CPU's speed.

The numbers in ``FrameworkOverheads`` are *reference-core* costs (one
desktop-class core); the deployment scales them by how much slower the
device's cores are, which is what makes framework overhead dominate on the
Raspberry Pi but not on a Xeon (Figure 5).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.errors import CompatibilityError, IncompatibleModelError, OutOfMemoryError
from repro.core.quantity import MEBI
from repro.graphs import Graph
from repro.graphs.ops import Op, OpCategory
from repro.graphs.tensor import DType
from repro.hardware.compute import ComputeKind, ComputeUnit
from repro.hardware.device import Device, DeviceCategory

# Single-core MAC/s of the reference desktop core the overhead constants
# were expressed against (2.2 GHz x 16 MACs/cycle AVX2).
_REFERENCE_CORE_MACS_PER_S = 35.2e9


@dataclass(frozen=True)
class FrameworkCapabilities:
    """Table II, one row per field group.

    Star ratings are integers 1-3 exactly as the paper prints them.
    """

    language: str = "Python"
    industry_backed: bool = True
    training_framework: bool = True
    usability: int = 2
    adding_new_models: int = 2
    predefined_models: int = 2
    documentation: int = 2
    no_extra_steps: bool = True
    mobile_deployment: bool = False
    low_level_modifications: int = 1
    compatibility_with_others: int = 1
    # Optimizations block:
    quantization: bool = False
    mixed_precision: bool = False
    dynamic_graph: bool = False
    pruning_exploit: bool = False
    fusion: bool = False
    auto_tuning: bool = False
    half_precision: bool = False


@dataclass(frozen=True)
class FrameworkOverheads:
    """Software-stack costs at reference-core speed (seconds).

    One-time costs (library load, graph setup, weight load) are excluded
    from the paper's timed inference loop (Section V) but appear in the
    profiler output; per-inference costs are part of every latency.
    """

    library_load_s: float = 0.5
    graph_setup_base_s: float = 0.05
    graph_setup_per_op_s: float = 1e-4
    session_base_s: float = 1e-4  # per-inference fixed entry cost
    python_per_op_s: float = 2e-5  # per-op dispatch above the kernel launch
    runtime_memory_bytes: int = 150 * MEBI  # resident interpreter + runtime
    # Deployment-time multiplier on weight bytes (checkpoint + live copies,
    # allocator fragmentation); drives the Table V memory failures.
    weight_memory_factor: float = 1.2
    # One-time GPU context creation + per-parameter staging glue (the
    # ``_C._TensorBase.to()`` bucket of Figure 5c); zero for CPU-only runs.
    gpu_staging_base_s: float = 0.0


@dataclass
class DeployedModel:
    """A model compiled/prepared for one (framework, device) pair."""

    framework: "Framework"
    device: Device
    graph: Graph
    unit: ComputeUnit
    weight_dtype: DType
    act_dtype: DType
    storage_mode: str = "resident"  # "resident" | "paged" | "fabric_spill"
    exploit_sparsity: bool = False
    cpu_scale: float = 1.0
    notes: list[str] = field(default_factory=list)
    #: set by :func:`repro.engine.cache.cached_deploy` on deployments it owns;
    #: sessions over such deployments share plan-cache entries.  Deployments
    #: built directly (and therefore free to be mutated) stay None and are
    #: never plan-cached.
    cache_key: tuple | None = None
    # Lazy byte-count memos: the deployed graph is immutable once deploy()
    # returns, so these integer walks are done once and shared by every
    # consumer (roofline inputs, one-time costs, batch memory planning).
    _weight_bytes: int | None = field(default=None, repr=False, compare=False)
    _peak_activation_bytes: int | None = field(default=None, repr=False,
                                               compare=False)

    @property
    def is_paged(self) -> bool:
        return self.storage_mode == "paged"

    def weight_bytes(self) -> int:
        """Total weight bytes of the deployed graph, memoized."""
        if self._weight_bytes is None:
            self._weight_bytes = self.graph.weight_bytes()
        return self._weight_bytes

    def peak_activation_bytes(self) -> int:
        """Peak live activation bytes of the deployed graph, memoized."""
        if self._peak_activation_bytes is None:
            self._peak_activation_bytes = self.graph.peak_activation_bytes()
        return self._peak_activation_bytes

    def footprint_bytes(self) -> int:
        over = self.framework.overheads
        return int(
            over.runtime_memory_bytes
            + over.weight_memory_factor * self.weight_bytes()
            + self.peak_activation_bytes()
        )

    # -- resolved overheads (device-scaled seconds) ----------------------
    @property
    def library_load_s(self) -> float:
        return self.framework.overheads.library_load_s * self.cpu_scale

    @property
    def graph_setup_s(self) -> float:
        over = self.framework.overheads
        per_op = over.graph_setup_per_op_s * len(self.graph.ops)
        setup = (over.graph_setup_base_s + per_op) * self.cpu_scale
        if self.framework.capabilities.dynamic_graph:
            # Dynamic graphs defer construction to run time (Figure 5a).
            setup *= 0.1
        if self.graph.metadata.get("frozen"):
            setup *= 0.5  # variables already constants, no initializer pass
        return setup

    @property
    def weight_load_s(self) -> float:
        """One-time weight read from backing store at setup."""
        return self.weight_bytes() / self.device.memory.storage_bandwidth_bytes_per_s

    @property
    def transfer_setup_s(self) -> float:
        """One-time host-to-accelerator weight copy (``model.to(device)``)."""
        if self.device.transfer is None:
            return 0.0
        return self.device.transfer.transfer_time_s(self.weight_bytes())

    @property
    def device_staging_s(self) -> float:
        """One-time GPU context init + weight staging into device space.

        Present even on shared-memory Jetson boards: unified memory still
        pays context creation and per-parameter copies, which is why
        ``.to()`` dominates the PyTorch TX2 profile (Figure 5c).
        """
        from repro.hardware.compute import ComputeKind

        if self.unit.kind is not ComputeKind.GPU:
            return 0.0
        copy_s = self.weight_bytes() / (self.device.memory.bandwidth_bytes_per_s / 2)
        return self.framework.overheads.gpu_staging_base_s * self.cpu_scale + copy_s

    @property
    def session_overhead_s(self) -> float:
        return self.framework.overheads.session_base_s * self.cpu_scale

    @property
    def per_op_overhead_s(self) -> float:
        return self.framework.overheads.python_per_op_s * self.cpu_scale

    def describe(self) -> str:
        return (
            f"{self.graph.name} via {self.framework.name} on {self.device.name} "
            f"[{self.unit.kind.value}, {self.weight_dtype.value}, {self.storage_mode}]"
        )


class Framework(abc.ABC):
    """Base class for the studied DNN frameworks."""

    name: str = "framework"
    capabilities: FrameworkCapabilities = FrameworkCapabilities()
    overheads: FrameworkOverheads = FrameworkOverheads()
    #: compute-unit preference order on a device.
    target_kinds: tuple[ComputeKind, ...] = (ComputeKind.GPU, ComputeKind.CPU)
    #: datatypes the framework will deploy with, best first.
    deploy_dtypes: tuple[DType, ...] = (DType.FP32,)
    #: fraction of a unit's peak that this framework's kernels reach,
    #: keyed by compute kind; refined per-op by :meth:`kernel_efficiency`.
    kernel_quality: dict[ComputeKind, float] = {
        ComputeKind.CPU: 0.2,
        ComputeKind.GPU: 0.2,
    }
    #: relative efficiency of special op classes (depthwise convolutions
    #: are the canonical CPU sore spot, Section VI-A's MobileNet anomaly).
    depthwise_efficiency: float = 0.3
    conv3d_efficiency: float = 0.8
    #: batch-norm kernel quality relative to conv quality (unfused BN).
    norm_efficiency: float = 0.5
    #: recurrent-layer kernel maturity relative to conv quality.
    recurrent_efficiency: float = 0.6
    #: (half-saturation MACs, exponent) of the op-size efficiency curve per
    #: unit kind: kernels on parallel units only approach peak when an op
    #: carries enough work (VGG-scale convolutions), which is why VGG gains
    #: more than ResNet from HPC GPUs (Section VI-C) and why MobileNet-v2
    #: underperforms its MAC count everywhere.  For CPUs the half point
    #: additionally scales with core count — a 44-core Xeon is far harder to
    #: fill with one small single-batch convolution than a 4-core A53,
    #: which reproduces the paper's "CPUs are not beneficial for
    #: single-batch inferencing" finding.
    size_saturation: dict[ComputeKind, tuple[float, float]] = {
        ComputeKind.GPU: (6e8, 0.5),
        ComputeKind.CPU: (4.5e6, 1.0),  # per core
        ComputeKind.ASIC: (2e7, 0.5),
        ComputeKind.VPU: (2e7, 0.5),
        ComputeKind.FPGA: (2e7, 0.5),
    }

    # ------------------------------------------------------------------
    def deploy(self, graph: Graph, device: Device, dtype: DType | None = None) -> DeployedModel:
        """Prepare ``graph`` for execution on ``device``.

        Raises the Table V failure taxonomy: :class:`CompatibilityError`,
        :class:`IncompatibleModelError`, :class:`ConversionError`,
        :class:`OutOfMemoryError`.
        """
        if not device.supports_framework(self.name):
            raise CompatibilityError(
                f"{device.name} only runs {device.supported_frameworks}, not {self.name}"
            )
        unit = self.select_unit(device)
        self.check_model_support(graph, device, unit)
        weight_dtype = dtype or unit.best_dtype(self.deploy_dtypes)
        act_dtype = weight_dtype if weight_dtype is not DType.BINARY else DType.INT8
        prepared = self.prepare_graph(graph, device, unit, weight_dtype)
        deployed = DeployedModel(
            framework=self,
            device=device,
            graph=prepared,
            unit=unit,
            weight_dtype=weight_dtype,
            act_dtype=act_dtype,
            exploit_sparsity=self.capabilities.pruning_exploit,
            cpu_scale=self.cpu_scale(device),
        )
        self.plan_memory(deployed)
        return deployed

    # -- deployment steps (overridable) ---------------------------------
    def select_unit(self, device: Device) -> ComputeUnit:
        for kind in self.target_kinds:
            if device.has_unit(kind):
                return device.unit(kind)
        raise CompatibilityError(
            f"{self.name} needs one of {[k.value for k in self.target_kinds]} "
            f"units; {device.name} has none"
        )

    def check_model_support(self, graph: Graph, device: Device, unit: ComputeUnit) -> None:
        """Model/platform gates shared by every framework.

        SSD drags in an image-processing library with no ARM32 build, which
        is the paper's Raspberry Pi code-incompatibility (Table V).
        """
        if graph.metadata.get("extra_image_library") and device.category is DeviceCategory.EDGE_CPU:
            raise IncompatibleModelError(
                f"{graph.name} requires an image-processing library unavailable "
                f"on {device.name} (Table V, code incompatibility)"
            )

    def prepare_graph(self, graph: Graph, device: Device, unit: ComputeUnit,
                      dtype: DType) -> Graph:
        """Apply the optimizations this framework implements (Table II)."""
        from repro.graphs.transforms import fuse_graph, quantize_graph

        prepared = quantize_graph(graph, dtype) if dtype is not DType.FP32 else graph.clone()
        if self.capabilities.fusion:
            prepared = fuse_graph(prepared)
        return prepared

    def plan_memory(self, deployed: DeployedModel) -> None:
        footprint = deployed.footprint_bytes()
        usable = deployed.device.memory.usable_bytes
        if footprint <= usable:
            return
        if self.capabilities.dynamic_graph:
            deployed.storage_mode = "paged"
            deployed.notes.append(
                f"footprint {footprint / MEBI:.0f} MiB exceeds usable "
                f"{usable / MEBI:.0f} MiB; dynamic graph pages weights per inference"
            )
            return
        raise OutOfMemoryError(
            f"{deployed.graph.name} needs {footprint / MEBI:.0f} MiB but "
            f"{deployed.device.name} offers {usable / MEBI:.0f} MiB and "
            f"{self.name} uses a static graph",
            required_bytes=footprint,
            available_bytes=usable,
        )

    # -- engine hooks -----------------------------------------------------
    def kernel_efficiency(self, op: Op, unit: ComputeUnit, dtype: DType,
                          graph: Graph | None = None, batch_size: int = 1) -> float:
        """Fraction of ``unit`` peak this framework reaches on ``op``.

        ``graph`` gives access to model-level metadata for frameworks whose
        kernel quality depends on the model family (NCSDK hand-tuning);
        ``batch_size`` enlarges the work per kernel and therefore the
        unit-fill factor — the mechanism by which multi-batch inference
        rescues wide platforms (Section VI-C).
        """
        base = self.kernel_quality.get(unit.kind, 0.15) * self._size_factor(op, unit, batch_size)
        if op.category is OpCategory.CONV:
            from repro.graphs.ops import Conv3D, DepthwiseConv2D

            if isinstance(op, DepthwiseConv2D) or getattr(op, "groups", 1) == op.output_shape.channels:
                return base * self.depthwise_efficiency
            if isinstance(op, Conv3D):
                return base * self.conv3d_efficiency
            return base
        if op.category is OpCategory.DENSE:
            return base
        if op.category is OpCategory.RECURRENT:
            # Sequential gate GEMMs: kernel quality applies, but the
            # recurrence itself is penalized via parallel_macs in the
            # size factor, plus a framework-level RNN maturity factor.
            return base * self.recurrent_efficiency
        if op.category is OpCategory.NORM:
            # Unfused batch-norm pays framework-quality costs (the visible
            # batch_norm slice of Figure 5a).
            return base * self.norm_efficiency
        # Activations, pooling and elementwise ops are simple streaming
        # kernels: framework-independent, bounded by memory in practice.
        return max(0.35 * self._size_factor(op, unit, batch_size), 1e-4)

    def _size_factor(self, op: Op, unit: ComputeUnit, batch_size: int = 1) -> float:
        """Saturating utilization factor: small ops cannot fill the unit."""
        half, exponent = self.size_saturation.get(unit.kind, (2e7, 0.5))
        if unit.kind is ComputeKind.CPU:
            half *= unit.cores
        macs = max(1, op.parallel_macs * batch_size)
        return (macs / (macs + half)) ** exponent

    def cpu_scale(self, device: Device) -> float:
        """How much slower framework bookkeeping runs on this device's CPU."""
        try:
            cpu = device.unit(ComputeKind.CPU)
        except ValueError:
            return 1.0
        return max(1.0, _REFERENCE_CORE_MACS_PER_S / cpu.per_core_macs_per_s)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
