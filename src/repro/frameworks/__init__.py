"""DNN framework models (Table II).

Nine frameworks, each encoding its real-world graph mode, optimizations,
software-stack overheads, and deployment pipeline.  ``load_framework``
resolves the names the paper's figures use (TF, T-Lite, PT, T-RT, ...).
"""

from repro.core.registry import Registry
from repro.frameworks.base import (
    DeployedModel,
    Framework,
    FrameworkCapabilities,
    FrameworkOverheads,
)
from repro.frameworks.caffe import Caffe
from repro.frameworks.darknet import DarkNet
from repro.frameworks.fpga import FINN, TVMVTA
from repro.frameworks.keras import Keras
from repro.frameworks.ncsdk import NCSDK
from repro.frameworks.pytorch import PyTorch
from repro.frameworks.tensorflow import TensorFlow
from repro.frameworks.tensorrt import TensorRT
from repro.frameworks.tflite import TFLite

FRAMEWORK_REGISTRY: Registry[Framework] = Registry("framework")
for _cls, _aliases in (
    (TensorFlow, ("TF",)),
    (TFLite, ("T-Lite", "TensorFlow Lite", "TensorFlow-Lite")),
    (Keras, ()),
    (Caffe, ("Caffe2", "Caffe1/2")),
    (PyTorch, ("PT", "Torch")),
    (TensorRT, ("T-RT", "TRT")),
    (DarkNet, ()),
    (NCSDK, ("Movidius SDK", "Movidius toolkit")),
    (TVMVTA, ("TVM", "VTA")),
    (FINN, ()),
):
    FRAMEWORK_REGISTRY.register(_cls.name, _cls, aliases=_aliases)


def load_framework(name: str) -> Framework:
    """Instantiate the named framework model."""
    return FRAMEWORK_REGISTRY.create(name)


def list_frameworks() -> list[str]:
    """Display names of every modelled framework."""
    return FRAMEWORK_REGISTRY.names()


__all__ = [
    "Caffe",
    "DarkNet",
    "DeployedModel",
    "FINN",
    "FRAMEWORK_REGISTRY",
    "Framework",
    "FrameworkCapabilities",
    "FrameworkOverheads",
    "Keras",
    "NCSDK",
    "PyTorch",
    "TFLite",
    "TVMVTA",
    "TensorFlow",
    "TensorRT",
    "list_frameworks",
    "load_framework",
]
