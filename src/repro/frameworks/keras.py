"""Keras framework model.

A high-level API over the TensorFlow engine (Section III-A): identical
kernels and session machinery, with an extra Python layer during model
construction.  The paper uses Keras and TensorFlow implementations
interchangeably, and so does this reproduction.
"""

from __future__ import annotations

from dataclasses import replace

from repro.frameworks.tensorflow import TensorFlow


class Keras(TensorFlow):
    """High-level API over the TensorFlow engine; extra construction cost."""

    name = "Keras"
    capabilities = replace(
        TensorFlow.capabilities,
        usability=3,
        adding_new_models=3,
        documentation=3,
    )
    overheads = replace(
        TensorFlow.overheads,
        library_load_s=TensorFlow.overheads.library_load_s * 1.2,
        graph_setup_base_s=TensorFlow.overheads.graph_setup_base_s * 1.3,
        graph_setup_per_op_s=TensorFlow.overheads.graph_setup_per_op_s * 1.5,
    )
