"""Caffe / Caffe2 framework model.

A C++ static-graph engine from 2013: low per-op overhead, decent CPU and
GPU kernels that aged with its CUDA backend — the paper finds it faster
than TensorFlow on the Jetson TX2 for everything except MobileNet-v2
(Figure 4), whose depthwise convolutions Caffe implements naively.
"""

from __future__ import annotations

from repro.core.quantity import MEBI
from repro.frameworks.base import Framework, FrameworkCapabilities, FrameworkOverheads
from repro.graphs.tensor import DType
from repro.hardware.compute import ComputeKind


class Caffe(Framework):
    """C++ static-graph engine from 2013 with aging CUDA kernels."""

    name = "Caffe"
    capabilities = FrameworkCapabilities(
        language="Python",
        industry_backed=True,
        training_framework=True,
        usability=2,
        adding_new_models=3,
        predefined_models=2,
        documentation=1,
        no_extra_steps=True,
        mobile_deployment=False,
        low_level_modifications=2,
        compatibility_with_others=1,
        quantization=True,
        mixed_precision=False,
        dynamic_graph=False,
        pruning_exploit=False,
        fusion=False,
        auto_tuning=False,
        half_precision=True,
    )
    overheads = FrameworkOverheads(
        library_load_s=0.35,
        graph_setup_base_s=0.3,  # prototxt parse + layer setup
        graph_setup_per_op_s=1.5e-3,
        session_base_s=5e-5,
        python_per_op_s=6e-6,  # C++ net->Forward(), minimal Python
        runtime_memory_bytes=140 * MEBI,
        weight_memory_factor=1.3,
    )
    target_kinds = (ComputeKind.GPU, ComputeKind.CPU)
    deploy_dtypes = (DType.FP32,)
    kernel_quality = {ComputeKind.CPU: 0.16, ComputeKind.GPU: 0.16}
    depthwise_efficiency = 0.35  # BLAS-backed CPU path is adequate...

    def check_model_support(self, graph, device, unit) -> None:
        from repro.core.errors import IncompatibleModelError

        super().check_model_support(graph, device, unit)
        if graph.metadata.get("recurrent"):
            raise IncompatibleModelError(
                f"{graph.name}: stock Caffe deployments ship no recurrent layers"
            )

    def kernel_efficiency(self, op, unit, dtype, graph=None, batch_size=1) -> float:
        """...but the CUDA grouped-convolution loop is the MobileNet sore
        spot the paper observes on the TX2 (Figure 4): depthwise efficiency
        collapses on the GPU only."""
        from repro.graphs.ops import DepthwiseConv2D

        efficiency = super().kernel_efficiency(op, unit, dtype, graph, batch_size)
        if unit.kind is ComputeKind.GPU and isinstance(op, DepthwiseConv2D):
            efficiency *= 0.03 / self.depthwise_efficiency
        return efficiency
