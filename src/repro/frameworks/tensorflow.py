"""TensorFlow framework model.

Static computational graph; graph construction (the ``base_layer`` bucket of
Figure 5b/d) is a large one-time cost; the C++ executor keeps per-op
dispatch modest.  GPU kernel quality is deliberately mediocre: the paper
finds TensorFlow "significantly low on small GPUs" and attributes it to the
static-graph overhead and hard-to-reach optimization flags (Section VI-B1).
"""

from __future__ import annotations

from repro.core.quantity import MEBI
from repro.frameworks.base import Framework, FrameworkCapabilities, FrameworkOverheads
from repro.graphs.tensor import DType
from repro.hardware.compute import ComputeKind


class TensorFlow(Framework):
    """Static-graph engine; strong CPU kernels, weak small-GPU performance."""

    name = "TensorFlow"
    capabilities = FrameworkCapabilities(
        language="Python",
        industry_backed=True,
        training_framework=True,
        usability=3,
        adding_new_models=2,
        predefined_models=3,
        documentation=2,
        no_extra_steps=True,
        mobile_deployment=False,
        low_level_modifications=2,
        compatibility_with_others=1,
        quantization=True,
        mixed_precision=False,
        dynamic_graph=False,
        pruning_exploit=True,  # experimental implementation (Table II)
        fusion=True,  # experimental implementation (Table II)
        auto_tuning=False,
        half_precision=True,
    )
    overheads = FrameworkOverheads(
        library_load_s=0.9,
        graph_setup_base_s=2.0,
        graph_setup_per_op_s=4.5e-2,
        session_base_s=2.5e-4,
        python_per_op_s=1.1e-5,
        runtime_memory_bytes=330 * MEBI,
        weight_memory_factor=1.3,
        gpu_staging_base_s=1.5,  # CUDA context init inside session setup
    )
    target_kinds = (ComputeKind.GPU, ComputeKind.CPU)
    deploy_dtypes = (DType.FP32,)
    kernel_quality = {ComputeKind.CPU: 0.25, ComputeKind.GPU: 0.10}
    depthwise_efficiency = 0.12  # unoptimized CPU depthwise kernels

    def prepare_graph(self, graph, device, unit, dtype):
        """TensorFlow's fusion sits behind experimental flags (Table II's
        dagger mark); the out-of-the-box deployment the paper measured runs
        the plain static graph, so no transform is applied here."""
        return graph.clone()
