"""DarkNet framework model.

A standalone C framework: tiny codebase, near-zero Python overhead, good
for low-level experimentation — but no industry backing, so complex models
simply are not available in it (the "Not Available" bars of Figures 3/4)
and none of the Table II optimizations are implemented.
"""

from __future__ import annotations

from repro.core.errors import IncompatibleModelError
from repro.core.quantity import MEBI
from repro.frameworks.base import Framework, FrameworkCapabilities, FrameworkOverheads
from repro.graphs.tensor import DType
from repro.hardware.compute import ComputeKind

# Model families with DarkNet implementations; the paper "could not
# find/implement some complex models" outside these (Section VI-B1).
_AVAILABLE_FAMILIES = ("yolo", "resnet", "alexnet", "vgg", "cifarnet")


class DarkNet(Framework):
    """Standalone C framework: tiny overheads, no optimizations, few models."""

    name = "DarkNet"
    capabilities = FrameworkCapabilities(
        language="C",
        industry_backed=False,
        training_framework=True,
        usability=2,
        adding_new_models=3,
        predefined_models=2,
        documentation=1,
        no_extra_steps=True,
        mobile_deployment=False,
        low_level_modifications=3,
        compatibility_with_others=1,
        quantization=False,
        mixed_precision=False,
        dynamic_graph=False,
        pruning_exploit=False,
        fusion=False,
        auto_tuning=False,
        half_precision=False,
    )
    overheads = FrameworkOverheads(
        library_load_s=0.05,
        graph_setup_base_s=0.1,  # cfg parse + weight mmap
        graph_setup_per_op_s=2e-4,
        session_base_s=1e-5,
        python_per_op_s=3e-6,
        runtime_memory_bytes=30 * MEBI,
        weight_memory_factor=1.1,
    )
    target_kinds = (ComputeKind.GPU, ComputeKind.CPU)
    deploy_dtypes = (DType.FP32,)
    kernel_quality = {ComputeKind.CPU: 0.12, ComputeKind.GPU: 0.13}
    depthwise_efficiency = 0.05

    def check_model_support(self, graph, device, unit) -> None:
        super().check_model_support(graph, device, unit)
        family = graph.metadata.get("family", "")
        if family not in _AVAILABLE_FAMILIES:
            raise IncompatibleModelError(
                f"no DarkNet implementation of {graph.name} exists "
                "(not industry backed; Section VI-B1)"
            )
