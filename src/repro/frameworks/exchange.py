"""Model exchange between frameworks.

Section III-B: "we find limited compatibility among frameworks ... TensorRT
provides better compatibility in importing models from other frameworks
(including ONNX format)".  This module encodes who can import from whom and
performs the conversion: the graph is serialized to the exchange format and
rebuilt, tagged with its provenance, exactly as a format translation would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConversionError
from repro.graphs.graph import Graph
from repro.graphs.serialize import graph_from_dict, graph_to_dict


@dataclass(frozen=True)
class ConversionPath:
    """One supported import route."""

    source: str
    destination: str
    via: str  # "native" | "onnx" | "uff" | "caffe-parser" | "frontend"
    lossless: bool = True


# destination -> {source: via}.  Derived from each toolchain's documented
# importers at the paper's time frame.
_IMPORTERS: dict[str, dict[str, str]] = {
    "TensorFlow": {"Keras": "native", "TFLite": "native"},
    "Keras": {"TensorFlow": "native"},
    "TFLite": {"TensorFlow": "native", "Keras": "native"},
    "PyTorch": {"Caffe": "onnx"},
    "Caffe": {"PyTorch": "onnx"},
    "TensorRT": {
        "TensorFlow": "uff",
        "Keras": "uff",
        "Caffe": "caffe-parser",
        "PyTorch": "onnx",
        "DarkNet": "onnx",
    },
    "NCSDK": {"TensorFlow": "frontend", "Caffe": "frontend"},
    "TVM VTA": {
        "TensorFlow": "frontend",
        "Keras": "frontend",
        "PyTorch": "frontend",
        "DarkNet": "frontend",
    },
    "FINN": {"PyTorch": "onnx"},
    "DarkNet": {},  # hand-written cfg files only
}


def can_convert(source: str, destination: str) -> ConversionPath | None:
    """The import route from ``source`` to ``destination``, or None."""
    if source == destination:
        return ConversionPath(source, destination, via="native")
    via = _IMPORTERS.get(destination, {}).get(source)
    if via is None:
        return None
    return ConversionPath(source, destination, via=via)


def supported_sources(destination: str) -> list[str]:
    """Frameworks ``destination`` can import models from."""
    return sorted(_IMPORTERS.get(destination, {}))


def compatibility_scores() -> dict[str, int]:
    """Importable-source counts per framework — the quantitative form of
    Table II's 'Compatibility with others' stars."""
    return {name: len(sources) for name, sources in _IMPORTERS.items()}


def convert(graph: Graph, source: str, destination: str) -> Graph:
    """Translate a model description between frameworks.

    The graph round-trips through the exchange format (structure and
    annotations preserved) and carries provenance metadata; deployment
    pipelines of the destination framework then apply their own transforms.

    Raises:
        ConversionError: when no import route exists.
    """
    path = can_convert(source, destination)
    if path is None:
        routes = supported_sources(destination) or ["(nothing)"]
        raise ConversionError(
            f"{destination} cannot import {source} models; it imports from: "
            f"{', '.join(routes)} (Section III-B's limited compatibility)"
        )
    converted = graph_from_dict(graph_to_dict(graph))
    converted.metadata["converted_from"] = source
    converted.metadata["conversion_via"] = path.via
    return converted
