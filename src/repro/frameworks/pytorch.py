"""PyTorch framework model.

Dynamic computation graphs: near-zero graph setup (Figure 5a), efficient
memory reuse that lets oversized models run by paging (the Table V diamond
entries), strong GPU kernels via cuDNN — but numpy-style CPU execution that
is several times slower than TensorFlow on the Raspberry Pi (Figure 8).
"""

from __future__ import annotations

from repro.core.quantity import MEBI
from repro.frameworks.base import Framework, FrameworkCapabilities, FrameworkOverheads
from repro.graphs.tensor import DType
from repro.hardware.compute import ComputeKind


class PyTorch(Framework):
    """Dynamic-graph engine: negligible setup, cuDNN-class GPU kernels."""

    name = "PyTorch"
    capabilities = FrameworkCapabilities(
        language="Python",
        industry_backed=True,
        training_framework=True,
        usability=3,
        adding_new_models=3,
        predefined_models=3,
        documentation=3,
        no_extra_steps=True,
        mobile_deployment=False,
        low_level_modifications=1,
        compatibility_with_others=1,
        quantization=True,
        mixed_precision=False,
        dynamic_graph=True,
        pruning_exploit=False,
        fusion=False,
        auto_tuning=False,
        half_precision=True,
    )
    overheads = FrameworkOverheads(
        library_load_s=1.2,
        graph_setup_base_s=0.06,  # model.__init__ + weight randn/load glue
        graph_setup_per_op_s=8e-4,
        session_base_s=4e-5,
        python_per_op_s=8e-6,  # per-op Python dispatch, rebuilt every run
        runtime_memory_bytes=220 * MEBI,
        weight_memory_factor=1.7,  # state_dict + module copies during load
        gpu_staging_base_s=4.8,  # CUDA context + per-parameter .to() copies
    )
    target_kinds = (ComputeKind.GPU, ComputeKind.CPU)
    deploy_dtypes = (DType.FP32,)
    kernel_quality = {ComputeKind.CPU: 0.045, ComputeKind.GPU: 0.25}
    depthwise_efficiency = 0.25
    norm_efficiency = 1.0  # ATen's batch-norm is as tuned as its conv path
