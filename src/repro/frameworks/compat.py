"""Model x platform compatibility (Table V).

Reconstructs the paper's compatibility matrix by actually attempting each
deployment and classifying the outcome: clean run, dynamic-graph fallback
(the paper's diamond), hard memory error, base-code incompatibility (O),
EdgeTPU conversion barrier (triangle), or FPGA fabric spill (double caret).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import (
    ConversionError,
    IncompatibleModelError,
    OutOfMemoryError,
)
from repro.frameworks import load_framework
from repro.hardware import load_device


class CompatStatus(enum.Enum):
    OK = "ok"
    DYNAMIC_GRAPH = "dynamic-graph"  # paper: diamond — large memory usage
    MEMORY_ERROR = "memory-error"
    CODE_INCOMPATIBILITY = "code-incompatibility"  # paper: O
    CONVERSION_BARRIER = "conversion-barrier"  # paper: triangle (EdgeTPU)
    FABRIC_SPILL = "fabric-spill"  # paper: double caret (PYNQ)

    @property
    def symbol(self) -> str:
        return {
            CompatStatus.OK: "+",
            CompatStatus.DYNAMIC_GRAPH: "^",
            CompatStatus.MEMORY_ERROR: "X",
            CompatStatus.CODE_INCOMPATIBILITY: "O",
            CompatStatus.CONVERSION_BARRIER: "4",
            CompatStatus.FABRIC_SPILL: "^^",
        }[self]

    @property
    def runnable(self) -> bool:
        return self in (CompatStatus.OK, CompatStatus.DYNAMIC_GRAPH, CompatStatus.FABRIC_SPILL)


@dataclass(frozen=True)
class CompatResult:
    model: str
    device: str
    framework: str
    status: CompatStatus
    detail: str = ""


# Framework(s) each Table V column deploys with, in fallback order: the
# paper's RPi column falls back from TensorFlow to PyTorch's dynamic graph
# when memory runs out, producing the diamond entries.
TABLE_V_FRAMEWORKS: dict[str, tuple[str, ...]] = {
    "Raspberry Pi 3B": ("TensorFlow", "PyTorch"),
    "Jetson TX2": ("PyTorch",),
    "Jetson Nano": ("TensorRT",),
    "EdgeTPU": ("TFLite",),
    "Movidius NCS": ("NCSDK",),
    "PYNQ-Z1": ("TVM VTA", "FINN"),
}

TABLE_V_MODELS = (
    "ResNet-18",
    "ResNet-50",
    "MobileNet-v2",
    "Inception-v4",
    "AlexNet",
    "VGG16",
    "SSD MobileNet-v1",
    "TinyYolo",
    "C3D",
)


def check_compatibility(model_name: str, device_name: str,
                        framework_name: str | None = None) -> CompatResult:
    """Attempt a deployment and classify the outcome, Table V style."""
    device = load_device(device_name)
    if framework_name is not None:
        chain = (framework_name,)
    else:
        chain = TABLE_V_FRAMEWORKS.get(device.name, (device.supported_frameworks or ("PyTorch",))[0:1])
        if isinstance(chain, str):
            chain = (chain,)
    last: CompatResult | None = None
    for candidate in chain:
        last = _attempt(model_name, device, candidate)
        if last.status.runnable:
            return last
    assert last is not None
    return last


def _attempt(model_name: str, device, framework_name: str) -> CompatResult:
    from repro.engine.cache import cached_deploy, cached_graph

    framework = load_framework(framework_name)
    graph = cached_graph(model_name)  # only .name is read — never mutated
    try:
        # Memoized (outcomes included): the matrix re-attempts the same
        # cells the figures already deployed, and fallback chains re-pay
        # the same failures — both become cache hits.
        deployed = cached_deploy(model_name, device.name, framework.name)
    except IncompatibleModelError as error:
        return CompatResult(graph.name, device.name, framework.name,
                            CompatStatus.CODE_INCOMPATIBILITY, str(error))
    except ConversionError as error:
        return CompatResult(graph.name, device.name, framework.name,
                            CompatStatus.CONVERSION_BARRIER, str(error))
    except OutOfMemoryError as error:
        return CompatResult(graph.name, device.name, framework.name,
                            CompatStatus.MEMORY_ERROR, str(error))
    status = {
        "resident": CompatStatus.OK,
        "paged": CompatStatus.DYNAMIC_GRAPH,
        "fabric_spill": CompatStatus.FABRIC_SPILL,
    }[deployed.storage_mode]
    detail = "; ".join(deployed.notes)
    return CompatResult(graph.name, device.name, framework.name, status, detail)


def compatibility_matrix() -> dict[str, dict[str, CompatResult]]:
    """The full Table V: model -> device -> result."""
    matrix: dict[str, dict[str, CompatResult]] = {}
    for model_name in TABLE_V_MODELS:
        row: dict[str, CompatResult] = {}
        for device_name in TABLE_V_FRAMEWORKS:
            row[device_name] = check_compatibility(model_name, device_name)
        matrix[model_name] = row
    return matrix
