"""FPGA frameworks for the PYNQ board: TVM VTA and FINN (Section III-A.9).

TVM VTA deploys an INT8 GEMM overlay and JIT-compiles models onto it; only
the tuned ResNet-18 port runs at speed — everything else spills to host
DDR3 through the overlay and slows down severely (Table V's double-caret
entries and footnote 5).  FINN deploys binarized-weight dataflow pipelines
and therefore only accepts models with retrained binary checkpoints
(CifarNet, ResNet-18).
"""

from __future__ import annotations

from repro.core.errors import ConversionError
from repro.core.quantity import MEBI
from repro.frameworks.base import Framework, FrameworkCapabilities, FrameworkOverheads
from repro.graphs.tensor import DType
from repro.graphs.transforms import fuse_graph, quantize_graph
from repro.hardware.compute import ComputeKind

# Models with a tuned VTA port whose parameters match the hardware spec
# (per the paper's footnote about VTA-compatible code); everything else
# spills through the overlay.
_VTA_PORTED = ("ResNet-18", "CifarNet 32x32")


class TVMVTA(Framework):
    """TVM JIT onto the VTA INT8 GEMM overlay; only ported models run well."""

    name = "TVM VTA"
    capabilities = FrameworkCapabilities(
        language="Python",
        industry_backed=True,
        training_framework=False,
        usability=1,
        adding_new_models=1,
        predefined_models=1,
        documentation=2,
        no_extra_steps=False,
        mobile_deployment=False,
        low_level_modifications=3,
        compatibility_with_others=1,
        quantization=True,
        mixed_precision=False,
        dynamic_graph=False,
        pruning_exploit=False,
        fusion=True,
        auto_tuning=True,
        half_precision=False,
    )
    overheads = FrameworkOverheads(
        library_load_s=0.6,
        graph_setup_base_s=3.0,  # JIT compile + overlay (bitstream) load
        graph_setup_per_op_s=4e-3,
        session_base_s=1e-4,
        python_per_op_s=5e-6,
        runtime_memory_bytes=80 * MEBI,
        weight_memory_factor=1.1,
    )
    target_kinds = (ComputeKind.FPGA,)
    deploy_dtypes = (DType.INT8,)
    kernel_quality = {ComputeKind.FPGA: 0.5}
    depthwise_efficiency = 0.2  # GEMM overlay maps depthwise poorly

    def prepare_graph(self, graph, device, unit, dtype):
        prepared = fuse_graph(graph)
        return quantize_graph(prepared, dtype)

    def deploy(self, graph, device, dtype=None):
        deployed = super().deploy(graph, device, dtype)
        if graph.metadata.get("zoo_name", graph.name) not in _VTA_PORTED:
            deployed.storage_mode = "fabric_spill"
            deployed.notes.append(
                f"{graph.name} has no tuned VTA port: layer tiles spill to host "
                "DDR3 through the overlay, a severe slowdown (Table V)"
            )
        return deployed


class FINN(Framework):
    """Binarized dataflow pipelines; needs retrained binary checkpoints."""

    name = "FINN"
    capabilities = FrameworkCapabilities(
        language="Python",
        industry_backed=False,
        training_framework=False,
        usability=1,
        adding_new_models=1,
        predefined_models=1,
        documentation=1,
        no_extra_steps=False,
        mobile_deployment=False,
        low_level_modifications=3,
        compatibility_with_others=1,
        quantization=True,
        mixed_precision=False,
        dynamic_graph=False,
        pruning_exploit=False,
        fusion=True,
        auto_tuning=False,
        half_precision=False,
    )
    overheads = FrameworkOverheads(
        library_load_s=0.6,
        graph_setup_base_s=2.0,
        graph_setup_per_op_s=2e-3,
        session_base_s=5e-5,
        python_per_op_s=2e-6,  # one dataflow pipeline invocation
        runtime_memory_bytes=60 * MEBI,
        weight_memory_factor=1.0,  # weights live in BRAM after configuration
    )
    target_kinds = (ComputeKind.FPGA,)
    deploy_dtypes = (DType.BINARY,)
    kernel_quality = {ComputeKind.FPGA: 0.4}

    def check_model_support(self, graph, device, unit) -> None:
        super().check_model_support(graph, device, unit)
        if not graph.metadata.get("finn_binarized_available", False):
            raise ConversionError(
                f"{graph.name}: FINN requires retrained binarized weights, "
                "which only exist for its published small models (Section VI-A)"
            )

    def prepare_graph(self, graph, device, unit, dtype):
        prepared = fuse_graph(graph)
        return quantize_graph(prepared, DType.BINARY)
