"""NVidia TensorRT framework model.

Inference-only engine builder: imports trained models, auto-tunes kernel
selection to the exact GPU, fuses aggressively, and deploys in FP16/INT8
mixed precision.  Produces the paper's best Jetson Nano numbers — an
average 4.1x over PyTorch (Figure 7), with smaller gains on models whose
memory footprint (AlexNet, VGG16) or input volume (C3D, TinyYolo) keeps
them bandwidth-bound.
"""

from __future__ import annotations

from repro.core.quantity import MEBI
from repro.frameworks.base import Framework, FrameworkCapabilities, FrameworkOverheads
from repro.graphs.tensor import DType
from repro.graphs.transforms import fuse_graph, quantize_graph
from repro.hardware.compute import ComputeKind


class TensorRT(Framework):
    """Inference-only engine builder: fusion, mixed precision, auto-tuning."""

    name = "TensorRT"
    capabilities = FrameworkCapabilities(
        language="Python",
        industry_backed=True,
        training_framework=False,
        usability=2,
        adding_new_models=2,
        predefined_models=2,
        documentation=1,
        no_extra_steps=True,
        mobile_deployment=False,
        low_level_modifications=1,
        compatibility_with_others=2,  # ONNX import path (Section III-B)
        quantization=True,
        mixed_precision=True,
        dynamic_graph=True,
        pruning_exploit=True,
        fusion=True,
        auto_tuning=True,
        half_precision=True,
    )
    overheads = FrameworkOverheads(
        library_load_s=0.4,
        graph_setup_base_s=2.0,  # engine build + kernel auto-tuning sweep
        graph_setup_per_op_s=5e-3,
        session_base_s=1.5e-5,
        python_per_op_s=1.5e-6,  # fused engine executes as one launch chain
        runtime_memory_bytes=120 * MEBI,
        weight_memory_factor=1.2,
    )
    target_kinds = (ComputeKind.GPU,)
    deploy_dtypes = (DType.FP16, DType.INT8)
    kernel_quality = {ComputeKind.GPU: 0.40}
    depthwise_efficiency = 0.5  # auto-tuned depthwise kernels

    def prepare_graph(self, graph, device, unit, dtype):
        """Engine build: fuse, then calibrate to mixed precision."""
        prepared = fuse_graph(graph)
        return quantize_graph(prepared, dtype)
