"""TensorFlow-Lite framework model.

TFLite requires extra deployment steps (conversion, freezing, quantization)
and pays them back with a frozen, fused, quantized graph executed by a flat
interpreter.  On the Raspberry Pi the INT8 kernels reduce memory traffic but
the Cortex-A53 gains no compute throughput from them (Section VI-B2); on
the EdgeTPU the converter only accepts models with quantization-aware
training checkpoints — the Table V conversion barriers.
"""

from __future__ import annotations

from repro.core.errors import ConversionError
from repro.core.quantity import MEBI
from repro.frameworks.base import Framework, FrameworkCapabilities, FrameworkOverheads
from repro.graphs.tensor import DType
from repro.graphs.transforms import freeze_graph, fuse_graph, quantize_graph
from repro.hardware.compute import ComputeKind


class TFLite(Framework):
    """Frozen/fused/quantized flat interpreter for mobile and IoT targets."""

    name = "TFLite"
    capabilities = FrameworkCapabilities(
        language="Python",
        industry_backed=True,
        training_framework=False,
        usability=1,
        adding_new_models=1,
        predefined_models=1,
        documentation=1,
        no_extra_steps=False,
        mobile_deployment=True,
        low_level_modifications=1,
        compatibility_with_others=1,
        quantization=True,
        mixed_precision=False,
        dynamic_graph=False,
        pruning_exploit=True,
        fusion=True,
        auto_tuning=False,
        half_precision=True,
    )
    overheads = FrameworkOverheads(
        library_load_s=0.25,
        graph_setup_base_s=0.05,
        graph_setup_per_op_s=4e-4,
        session_base_s=2e-5,
        python_per_op_s=2.5e-6,  # flat interpreter loop, no Python dispatch
        runtime_memory_bytes=60 * MEBI,
        weight_memory_factor=1.05,  # frozen flatbuffer is mapped, not copied
    )
    target_kinds = (ComputeKind.ASIC, ComputeKind.CPU)
    deploy_dtypes = (DType.INT8,)
    kernel_quality = {ComputeKind.CPU: 0.25, ComputeKind.ASIC: 0.25}
    depthwise_efficiency = 0.35  # hand-written NEON depthwise kernels

    def check_model_support(self, graph, device, unit) -> None:
        super().check_model_support(graph, device, unit)
        if unit.kind is ComputeKind.ASIC and not graph.metadata.get("qat_available", False):
            raise ConversionError(
                f"{graph.name}: the EdgeTPU compiler only accepts quantized models, "
                "and post-training quantization does not produce a compatible "
                "TFLite flatbuffer for this network (Table V, Section VI-A)"
            )

    def prepare_graph(self, graph, device, unit, dtype):
        """The full TFLite conversion pipeline: freeze, fuse, quantize."""
        prepared = freeze_graph(graph)
        prepared = fuse_graph(prepared)
        return quantize_graph(prepared, dtype)
