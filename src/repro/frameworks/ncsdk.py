"""Movidius NCSDK toolkit model.

Compiles models to the Myriad 2 VPU with hand-tuned FP16 kernels and
aggressive fusion.  Because the optimizations are hand-tuned, efficiency is
very uneven across model families: MobileNet-class and C3D-class workloads
run near the device's best, while ResNet-50 and Inception-v4 fall far from
it (Section VI-A); importing anything with 3-D convolutions at all failed
in the paper's hands for the C3D base code (Table V note).
"""

from __future__ import annotations

from repro.core.errors import IncompatibleModelError
from repro.core.quantity import MEBI
from repro.frameworks.base import Framework, FrameworkCapabilities, FrameworkOverheads
from repro.graphs.ops import Op
from repro.graphs.tensor import DType
from repro.graphs.transforms import fuse_graph, quantize_graph
from repro.hardware.compute import ComputeKind

# Hand-tuning quality per model family: 1.0 = fully tuned kernels.  The
# ordering is calibrated against Figure 2's Movidius bars: classic
# large-convolution networks map well onto the SHAVE kernels, while the
# depthwise/1x1-heavy MobileNet family and the multi-branch Inception-v4
# leave the VLIW lanes underfilled.
_FAMILY_TUNING = {
    "mobilenet": 0.55,
    "ssd": 0.6,
    "alexnet": 0.9,
    "vgg": 0.85,
    "yolo": 0.7,
    "resnet": 1.0,
    "inception": 0.75,
}
_DEFAULT_TUNING = 0.7


class NCSDK(Framework):
    """Movidius toolkit: hand-tuned FP16 kernels compiled onto the stick."""

    name = "NCSDK"
    capabilities = FrameworkCapabilities(
        language="Python",
        industry_backed=True,
        training_framework=False,
        usability=1,
        adding_new_models=1,
        predefined_models=1,
        documentation=1,
        no_extra_steps=False,
        mobile_deployment=False,
        low_level_modifications=1,
        compatibility_with_others=1,
        quantization=True,
        mixed_precision=False,
        dynamic_graph=False,
        pruning_exploit=False,
        fusion=True,
        auto_tuning=False,
        half_precision=True,
    )
    overheads = FrameworkOverheads(
        library_load_s=0.3,
        graph_setup_base_s=1.5,  # mvNCCompile + firmware upload over USB
        graph_setup_per_op_s=2e-3,
        session_base_s=2e-4,  # USB command round-trip glue
        python_per_op_s=0.0,  # the compiled blob runs entirely on-stick
        runtime_memory_bytes=20 * MEBI,
        weight_memory_factor=1.1,
    )
    target_kinds = (ComputeKind.VPU,)
    deploy_dtypes = (DType.FP16,)
    kernel_quality = {ComputeKind.VPU: 0.55}
    depthwise_efficiency = 0.8  # SHAVE kernels handle depthwise well

    def check_model_support(self, graph, device, unit) -> None:
        super().check_model_support(graph, device, unit)
        if graph.metadata.get("conv3d"):
            raise IncompatibleModelError(
                f"{graph.name}: the NCSDK compiler rejects the 3-D convolution "
                "base code (Table V, code incompatibility)"
            )
        if graph.metadata.get("recurrent"):
            raise IncompatibleModelError(
                f"{graph.name}: mvNCCompile has no recurrent-layer support"
            )

    def prepare_graph(self, graph, device, unit, dtype):
        prepared = fuse_graph(graph)
        return quantize_graph(prepared, dtype)

    def kernel_efficiency(self, op: Op, unit, dtype, graph=None, batch_size=1) -> float:
        base = super().kernel_efficiency(op, unit, dtype, graph, batch_size)
        return base * self.tuning_quality(graph)

    @staticmethod
    def tuning_quality(graph) -> float:
        """Hand-tuning quality for the model family (1.0 = fully tuned)."""
        if graph is None:
            return _DEFAULT_TUNING
        return _FAMILY_TUNING.get(graph.metadata.get("family", ""), _DEFAULT_TUNING)

    def deploy(self, graph, device, dtype=None):
        deployed = super().deploy(graph, device, dtype)
        deployed.notes.append(
            f"hand-tuning quality {self.tuning_quality(graph):.2f} for "
            f"family {graph.metadata.get('family', 'unknown')!r}"
        )
        return deployed
