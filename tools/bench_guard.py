#!/usr/bin/env python
"""Bench-regression guard: hold the committed BENCH_*.json to their targets.

CI runs the perf benchmarks (which rewrite ``BENCH_sweep.json``,
``BENCH_fleet.json`` and ``BENCH_placement.json``) and then this guard,
so a perf regression fails the job with the specific budget it broke
instead of a bare assert.  It can also be pointed at committed files
locally::

    python tools/bench_guard.py                       # all repo-root files
    python tools/bench_guard.py BENCH_fleet.json      # explicit snapshots

Sweep checks (targets travel inside the file, written by the benchmark):

* ``speedup_warm``        >= ``min_warm_speedup``
* ``compiled_warm_s``     <  ``max_compiled_warm_s``
* ``compiled_uncached_s`` <  ``max_compiled_uncached_s``
* ``dedup_ratio``         >  1.0 and snapshots identical at zero tolerance

Fleet checks:

* ``requests``    >= ``min_requests`` (the million-request scale floor)
* ``simulate_s``  <  ``max_simulate_s`` (< 5 s per million requests)
* ``completed + dropped + rejected == requests`` (conservation)
* ``identical_across_seed_repeat`` is true (byte-identical reports)

Placement checks:

* ``search_s``            <  ``max_search_s`` (full-zoo search stays interactive)
* ``pipeline_simulate_s`` <  ``max_pipeline_simulate_s``
* ``pipeline_requests``   at the million-request scale with conservation
* ``search_deterministic`` and ``serving_deterministic`` are true

Check checks (the six-pass static verification run):

* ``total_s``       <  ``max_total_s`` (pre-commit cheap, all six passes)
* ``findings``      == 0 and ``strict_clean`` is true (zero-findings gate)
* ``per_pass_s``    covers every pass named in ``passes``
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_PATHS = (_ROOT / "BENCH_sweep.json", _ROOT / "BENCH_fleet.json",
                 _ROOT / "BENCH_placement.json", _ROOT / "BENCH_check.json")


def _require(bench: dict, failures: list[str], name: str, hint: str):
    value = bench.get(name)
    if value is None:
        failures.append(f"missing field {name!r} - regenerate the "
                        f"benchmark (pytest {hint})")
    return value


def check_sweep(bench: dict) -> list[str]:
    """Every broken sweep budget as a human-readable failure line."""
    failures: list[str] = []
    hint = "benchmarks/test_perf_sweep.py"

    speedup = _require(bench, failures, "speedup_warm", hint)
    floor = _require(bench, failures, "min_warm_speedup", hint)
    if speedup is not None and floor is not None and speedup < floor:
        failures.append(f"speedup_warm {speedup}x < required {floor}x")

    warm = _require(bench, failures, "compiled_warm_s", hint)
    warm_max = _require(bench, failures, "max_compiled_warm_s", hint)
    if warm is not None and warm_max is not None and warm >= warm_max:
        failures.append(f"compiled_warm_s {warm}s >= budget {warm_max}s")

    uncached = _require(bench, failures, "compiled_uncached_s", hint)
    uncached_max = _require(bench, failures, "max_compiled_uncached_s", hint)
    if uncached is not None and uncached_max is not None and uncached >= uncached_max:
        failures.append(
            f"compiled_uncached_s {uncached}s >= budget {uncached_max}s")

    dedup = _require(bench, failures, "dedup_ratio", hint)
    if dedup is not None and dedup <= 1.0:
        failures.append(f"dedup_ratio {dedup} <= 1.0 - the sweep compiler "
                        "is not batching anything")

    if bench.get("identical_at_zero_tolerance") is not True:
        failures.append("snapshots were not identical at zero tolerance")
    return failures


def check_fleet(bench: dict) -> list[str]:
    """Every broken fleet budget as a human-readable failure line."""
    failures: list[str] = []
    hint = "benchmarks/test_perf_fleet.py"

    requests = _require(bench, failures, "requests", hint)
    floor = _require(bench, failures, "min_requests", hint)
    if requests is not None and floor is not None and requests < floor:
        failures.append(f"requests {requests} < required {floor} - the "
                        "benchmark is not exercising fleet scale")

    simulate_s = _require(bench, failures, "simulate_s", hint)
    budget_s = _require(bench, failures, "max_simulate_s", hint)
    if simulate_s is not None and budget_s is not None and simulate_s >= budget_s:
        failures.append(f"simulate_s {simulate_s}s >= budget {budget_s}s "
                        f"for {requests} requests")

    served = (bench.get("completed"), bench.get("dropped"), bench.get("rejected"))
    if requests is not None and None not in served and sum(served) != requests:
        failures.append(f"conservation broken: completed+dropped+rejected "
                        f"{sum(served)} != requests {requests}")

    if bench.get("identical_across_seed_repeat") is not True:
        failures.append("same-seed fleet reports were not byte-identical")
    return failures


def check_placement(bench: dict) -> list[str]:
    """Every broken placement budget as a human-readable failure line."""
    failures: list[str] = []
    hint = "benchmarks/test_perf_placement.py"

    search_s = _require(bench, failures, "search_s", hint)
    search_max = _require(bench, failures, "max_search_s", hint)
    if search_s is not None and search_max is not None and search_s >= search_max:
        models = bench.get("models")
        failures.append(f"search_s {search_s}s >= budget {search_max}s "
                        f"for {models} models")

    simulate_s = _require(bench, failures, "pipeline_simulate_s", hint)
    budget_s = _require(bench, failures, "max_pipeline_simulate_s", hint)
    if simulate_s is not None and budget_s is not None and simulate_s >= budget_s:
        failures.append(f"pipeline_simulate_s {simulate_s}s >= budget "
                        f"{budget_s}s")

    requests = _require(bench, failures, "pipeline_requests", hint)
    served = (bench.get("pipeline_completed"), bench.get("pipeline_dropped"),
              bench.get("pipeline_rejected"))
    if requests is not None and None not in served and sum(served) != requests:
        failures.append(f"conservation broken: completed+dropped+rejected "
                        f"{sum(served)} != requests {requests}")

    frontier_size = _require(bench, failures, "frontier_size", hint)
    if frontier_size is not None and frontier_size <= 0:
        failures.append("frontier_size is 0 - the search found nothing")

    if bench.get("search_deterministic") is not True:
        failures.append("placement searches were not deterministic")
    if bench.get("serving_deterministic") is not True:
        failures.append("same-seed pipelined reports were not byte-identical")
    return failures


def check_check(bench: dict) -> list[str]:
    """Every broken static-check budget as a human-readable failure line."""
    failures: list[str] = []
    hint = "benchmarks/test_perf_check.py"

    total_s = _require(bench, failures, "total_s", hint)
    budget_s = _require(bench, failures, "max_total_s", hint)
    if total_s is not None and budget_s is not None and total_s >= budget_s:
        failures.append(f"total_s {total_s}s >= budget {budget_s}s - "
                        "the six-pass run is no longer pre-commit cheap")

    findings = _require(bench, failures, "findings", hint)
    if findings:
        failures.append(f"{findings} findings - the strict run must be clean")
    if bench.get("strict_clean") is not True:
        failures.append("strict_clean is not true")

    passes = _require(bench, failures, "passes", hint)
    per_pass = _require(bench, failures, "per_pass_s", hint)
    if passes is not None and per_pass is not None:
        missing = sorted(set(passes) - set(per_pass))
        if missing:
            failures.append(f"per_pass_s missing timings for {missing}")
    return failures


def check(bench: dict) -> list[str]:
    """Dispatch on the benchmark kind recorded in the file."""
    kind = str(bench.get("benchmark", ""))
    if kind.startswith("fleet"):
        return check_fleet(bench)
    if kind.startswith("placement"):
        return check_placement(bench)
    if kind.startswith("check"):
        return check_check(bench)
    return check_sweep(bench)


def _summary(bench: dict) -> str:
    kind = str(bench.get("benchmark", ""))
    if kind.startswith("fleet"):
        return (f"{bench['requests']} requests in {bench['simulate_s']}s "
                f"({bench['requests_per_wall_s']}/wall-s), deterministic")
    if kind.startswith("placement"):
        return (f"{bench['models']}-model zoo searched in "
                f"{bench['search_s']}s ({bench['frontier_size']} frontier "
                f"points), {bench['pipeline_requests']} pipelined requests "
                f"in {bench['pipeline_simulate_s']}s")
    if kind.startswith("check"):
        return (f"{len(bench['passes'])} passes in {bench['total_s']}s, "
                f"{bench['findings']} findings")
    return (f"warm {bench['compiled_warm_s']}s, "
            f"uncached {bench['compiled_uncached_s']}s, "
            f"{bench['speedup_warm']}x warm speedup, "
            f"{bench['dedup_ratio']}x dedup")


def main(argv: list[str]) -> int:
    paths = [Path(arg) for arg in argv[1:]] or list(DEFAULT_PATHS)
    status = 0
    for path in paths:
        try:
            bench = json.loads(path.read_text())
        except FileNotFoundError:
            print(f"bench guard: {path} not found", file=sys.stderr)
            status = max(status, 2)
            continue
        except json.JSONDecodeError as error:
            print(f"bench guard: {path} is not valid JSON: {error}",
                  file=sys.stderr)
            status = max(status, 2)
            continue
        failures = check(bench)
        if failures:
            for line in failures:
                print(f"bench guard: {path.name}: {line}", file=sys.stderr)
            status = max(status, 1)
        else:
            print(f"bench guard: {path.name} ok - {_summary(bench)}")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
