#!/usr/bin/env python
"""Bench-regression guard: hold BENCH_sweep.json to its committed targets.

CI runs the sweep benchmark (which rewrites ``BENCH_sweep.json``) and then
this guard, so a perf regression fails the job with the specific budget it
broke instead of a bare assert.  It can also be pointed at the committed
file locally::

    python tools/bench_guard.py            # repo-root BENCH_sweep.json
    python tools/bench_guard.py path.json  # an explicit snapshot

Checks (targets travel inside the file, written by the benchmark):

* ``speedup_warm``        >= ``min_warm_speedup``
* ``compiled_warm_s``     <  ``max_compiled_warm_s``
* ``compiled_uncached_s`` <  ``max_compiled_uncached_s``
* ``dedup_ratio``         >  1.0 and snapshots identical at zero tolerance
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"


def check(bench: dict) -> list[str]:
    """Every broken budget as a human-readable failure line."""
    failures: list[str] = []

    def require(name: str) -> float | None:
        value = bench.get(name)
        if value is None:
            failures.append(f"missing field {name!r} - regenerate the "
                            "benchmark (pytest benchmarks/test_perf_sweep.py)")
        return value

    speedup = require("speedup_warm")
    floor = require("min_warm_speedup")
    if speedup is not None and floor is not None and speedup < floor:
        failures.append(f"speedup_warm {speedup}x < required {floor}x")

    warm = require("compiled_warm_s")
    warm_max = require("max_compiled_warm_s")
    if warm is not None and warm_max is not None and warm >= warm_max:
        failures.append(f"compiled_warm_s {warm}s >= budget {warm_max}s")

    uncached = require("compiled_uncached_s")
    uncached_max = require("max_compiled_uncached_s")
    if uncached is not None and uncached_max is not None and uncached >= uncached_max:
        failures.append(
            f"compiled_uncached_s {uncached}s >= budget {uncached_max}s")

    dedup = require("dedup_ratio")
    if dedup is not None and dedup <= 1.0:
        failures.append(f"dedup_ratio {dedup} <= 1.0 - the sweep compiler "
                        "is not batching anything")

    if bench.get("identical_at_zero_tolerance") is not True:
        failures.append("snapshots were not identical at zero tolerance")
    return failures


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    try:
        bench = json.loads(path.read_text())
    except FileNotFoundError:
        print(f"bench guard: {path} not found", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"bench guard: {path} is not valid JSON: {error}", file=sys.stderr)
        return 2

    failures = check(bench)
    if failures:
        for line in failures:
            print(f"bench guard: {line}", file=sys.stderr)
        return 1
    print(f"bench guard: {path.name} ok - "
          f"warm {bench['compiled_warm_s']}s, "
          f"uncached {bench['compiled_uncached_s']}s, "
          f"{bench['speedup_warm']}x warm speedup, "
          f"{bench['dedup_ratio']}x dedup")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
